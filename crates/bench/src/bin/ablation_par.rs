//! Ablation A8: chunk-parallel compression. A single large DEFLATE
//! compress job is sharded into 1 MiB stream fragments and fanned out
//! across C-Engine channels; fragments stitch (sync-flush framing) into
//! one valid stream whose bytes depend only on the data and the chunk
//! size. This harness measures the virtual-time speedup of the fan-out
//! over the single-channel serial path on a 16 MiB payload, and the
//! compression-ratio cost of fragment stitching.
//!
//! The harness exits non-zero unless the 4-channel fan-out reaches at
//! least 2x single-channel throughput — the gate the verify script
//! relies on. Results land in `results/BENCH_ablation_par.json`
//! (mirrored at the repo root).

use bench::{banner, dataset, BenchReport, Table};
use pedal::{Datatype, Design};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;
use pedal_obs::Json;
use pedal_par::{par_deflate, Level, ParConfig};
use pedal_service::{JobDesc, JobMetrics, PedalService, ServiceConfig};

const PAYLOAD: usize = 16 * 1024 * 1024;
const CHUNK: usize = 1024 * 1024;

fn payload() -> Vec<u8> {
    let corpus = dataset(DatasetId::SilesiaXml);
    corpus.iter().cycle().take(PAYLOAD).copied().collect()
}

/// Compress one `data` job on `channels` C-Engine channels, with or
/// without chunk-parallel fan-out, and return its metrics.
fn run(data: &[u8], channels: usize, fan_out: bool) -> (JobMetrics, Vec<u8>) {
    let mut cfg = ServiceConfig::new(Platform::BlueField2).with_ce_channels(channels);
    if fan_out {
        cfg = cfg.with_parallel(2 * CHUNK, CHUNK);
    }
    let svc = PedalService::start(cfg);
    svc.submit(JobDesc::compress(Design::CE_DEFLATE, Datatype::Byte, data.to_vec()))
        .expect("submit");
    let done = svc.drain();
    let out = done[0].result.as_ref().expect("compress").bytes.clone();
    (done[0].metrics.expect("metrics"), out)
}

fn main() {
    banner("Ablation A8", "Chunk-parallel fan-out across C-Engine channels");
    let data = payload();
    let mut report = BenchReport::new("ablation_par");
    report.set("payload_bytes", Json::u64(data.len() as u64));
    report.set("chunk_bytes", Json::u64(CHUNK as u64));

    // Serial reference: today's path, one terminated stream on one
    // channel.
    let (serial, serial_out) = run(&data, 1, false);
    let serial_tput = data.len() as f64 / 1e6 / serial.service.as_secs_f64();
    println!(
        "Serial (1 channel, no fan-out): {:.3} ms -> {:.1} MB/s, {} bytes out\n",
        serial.service.as_millis_f64(),
        serial_tput,
        serial.bytes_out
    );
    report.set(
        "serial",
        Json::obj(vec![
            ("service_ns", Json::u64(serial.service.as_nanos())),
            ("throughput_mbps", Json::num(serial_tput)),
            ("bytes_out", Json::u64(serial.bytes_out as u64)),
        ]),
    );

    let mut t =
        Table::new(vec!["CE channels", "Chunks", "Service(ms)", "Tput(MB/s)", "Speedup", "Ratio"]);
    let chunks = data.len().div_ceil(CHUNK);
    let mut rows = Vec::new();
    let mut speedup4 = 0.0f64;
    let mut fan_ref: Option<Vec<u8>> = None;
    for channels in [1usize, 2, 4] {
        let (m, out) = run(&data, channels, true);
        let tput = data.len() as f64 / 1e6 / m.service.as_secs_f64();
        let speedup = tput / serial_tput;
        if channels == 4 {
            speedup4 = speedup;
        }
        match &fan_ref {
            None => fan_ref = Some(out),
            Some(r) => assert_eq!(r, &out, "fan-out bytes must not depend on channel count"),
        }
        t.row(vec![
            channels.to_string(),
            chunks.to_string(),
            format!("{:.3}", m.service.as_millis_f64()),
            format!("{tput:.1}"),
            format!("{speedup:.2}x"),
            format!("{:.3}", data.len() as f64 / m.bytes_out as f64),
        ]);
        rows.push(Json::obj(vec![
            ("channels", Json::u64(channels as u64)),
            ("chunks", Json::u64(chunks as u64)),
            ("service_ns", Json::u64(m.service.as_nanos())),
            ("throughput_mbps", Json::num(tput)),
            ("speedup_vs_serial", Json::num(speedup)),
            ("bytes_out", Json::u64(m.bytes_out as u64)),
        ]));
    }
    t.print();
    report.set("fan_out", Json::Arr(rows));

    // Ratio cost of stitching: matches cannot cross chunk boundaries and
    // every non-final fragment pays a 5-byte sync flush.
    let fan_out_bytes = fan_ref.as_ref().map(Vec::len).unwrap_or(0);
    let overhead = fan_out_bytes as f64 / serial_out.len() as f64 - 1.0;
    println!(
        "\nStitching overhead: {} -> {} bytes ({:+.3}% vs one terminated stream)",
        serial_out.len(),
        fan_out_bytes,
        overhead * 100.0
    );
    report.set("stitch_overhead_frac", Json::num(overhead));

    // The service body equals the library-level stitching for the same
    // chunk size — the engine path adds nothing of its own.
    let (_, _, body) = pedal::wire::unframe(fan_ref.as_ref().expect("fan-out ran")).expect("frame");
    assert_eq!(
        body,
        par_deflate(&data, Level::DEFAULT, &ParConfig::new(4).with_chunk_size(CHUNK)),
        "service fan-out body must equal pedal-par stitching"
    );

    report.set("speedup_4ch", Json::num(speedup4));
    report.write();
    println!(
        "\nEach fragment resets the match window and appends a sync flush, so\n\
         the ratio cost is bounded and fixed per chunk; the virtual-time win\n\
         scales with channels until per-chunk overheads (pool hit, final\n\
         stitch memcpy) dominate."
    );
    assert!(
        speedup4 >= 2.0,
        "ACCEPTANCE: 4-channel fan-out must give >= 2x single-channel throughput, got {speedup4:.2}x"
    );
    println!("\nacceptance: 4-channel speedup {speedup4:.2}x >= 2x  OK");
}
