//! Ablation A9: the pco numeric/columnar codec tier against the DEFLATE
//! baseline on the float corpora (exaalt MD snapshots + obs_error
//! brightness-temperature errors).
//!
//! DEFLATE sees these columns as opaque bytes; pco sees them as f32
//! latents (order-preserving bijection), applies a configurable-order
//! delta, bins the residuals, and entropy-codes the bin indices with a
//! bit-exact rANS. The claim this harness gates: on numeric columns the
//! pco tier achieves a *better* ratio than the DEFLATE backend at a
//! comparable SoC virtual-time cost (cost-model rates: pco 55 MB/s vs
//! DEFLATE 35 MB/s compress on BF2's SoC).
//!
//! The harness also pins the codec's determinism contract on fixed
//! seeds: same input -> same bytes, decode(encode(x)) bit-exact for all
//! four column widths including NaN payloads, infinities, and signed
//! zeros. Exits non-zero if any gate fails. Results land in
//! `results/BENCH_ablation_pco.json` (mirrored at the repo root).

use bench::{banner, dataset, fmt_ms, BenchReport, Table};
use pedal_datasets::DatasetId;
use pedal_dpu::{Algorithm, CostModel, Direction, Platform};
use pedal_obs::Json;
use pedal_pco::{ColumnType, PcoConfig};

/// The numeric-column corpora: the three exaalt MD datasets plus
/// obs_error, the paper's barely-compressible float workload.
const DATASETS: [DatasetId; 4] =
    [DatasetId::Exaalt1, DatasetId::Exaalt3, DatasetId::Exaalt2, DatasetId::ObsError];

/// SplitMix64: the fixed-seed generator for the determinism sweep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Round-trip one encoded stream and demand bit-exact recovery within
/// the declared budget.
fn roundtrip(label: &str, raw: &[u8], encoded: &[u8]) {
    let back = pedal_pco::decompress_bytes_with_limit(encoded, raw.len())
        .unwrap_or_else(|e| panic!("{label}: decode failed: {e}"));
    assert_eq!(back, raw, "{label}: decode(encode(x)) must be bit-exact");
}

/// Fixed-seed determinism sweep over all four column widths plus bytes
/// mode, with non-finite values salted into the float columns.
fn determinism_sweep() -> usize {
    let cfg = PcoConfig::default();
    let mut checks = 0;
    for seed in [1u64, 42, 0xDEC0DE] {
        let mut rng = Rng(seed);
        let n = 4096 + (seed as usize % 512);

        let u32s: Vec<u8> = (0..n)
            .flat_map(|i| (((rng.next() as u32) >> 12).wrapping_add(i as u32)).to_le_bytes())
            .collect();
        let u64s: Vec<u8> = (0..n).flat_map(|_| (rng.next() >> 20).to_le_bytes()).collect();
        let mut f32s: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.01).sin() * 300.0).collect();
        f32s[7] = f32::NAN;
        f32s[19] = f32::from_bits(0x7FC0_1234); // NaN with payload bits
        f32s[n / 2] = f32::INFINITY;
        f32s[n / 2 + 1] = f32::NEG_INFINITY;
        f32s[n - 1] = -0.0;
        let f32b: Vec<u8> = f32s.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut f64s: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.003).cos() * 1e6).collect();
        f64s[3] = f64::NAN;
        f64s[11] = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        f64s[n / 3] = f64::NEG_INFINITY;
        f64s[n - 2] = -0.0;
        let f64b: Vec<u8> = f64s.iter().flat_map(|v| v.to_le_bytes()).collect();
        let bytes: Vec<u8> = (0..n + 3).map(|_| rng.next() as u8).collect();

        let columns: [(&str, &[u8], Option<ColumnType>); 5] = [
            ("u32", &u32s, Some(ColumnType::U32)),
            ("u64", &u64s, Some(ColumnType::U64)),
            ("f32", &f32b, Some(ColumnType::F32)),
            ("f64", &f64b, Some(ColumnType::F64)),
            ("bytes", &bytes, None),
        ];
        for (name, raw, ty) in columns {
            let label = format!("seed {seed} {name}");
            let enc = match ty {
                Some(t) => pedal_pco::compress_typed_bytes(raw, t, &cfg),
                None => pedal_pco::compress_bytes(raw, &cfg),
            };
            let again = match ty {
                Some(t) => pedal_pco::compress_typed_bytes(raw, t, &cfg),
                None => pedal_pco::compress_bytes(raw, &cfg),
            };
            assert_eq!(enc, again, "{label}: encode must be deterministic");
            roundtrip(&label, raw, &enc);
            checks += 1;
        }
    }
    checks
}

fn main() {
    banner("Ablation A9", "pco numeric codec vs DEFLATE on float columns (SoC, BlueField-2)");
    let costs = CostModel::for_platform(Platform::BlueField2);
    let cfg = PcoConfig::default();
    let mut report = BenchReport::new("ablation_pco");

    let checks = determinism_sweep();
    println!("determinism sweep: {checks} fixed-seed columns round-tripped bit-exact\n");
    report.set("determinism_checks", Json::u64(checks as u64));

    let mut t = Table::new(vec![
        "Dataset",
        "MB",
        "pco ratio",
        "DEFLATE ratio",
        "pco comp(ms)",
        "DEFLATE comp(ms)",
        "Time vs DEFLATE",
    ]);
    let mut rows = Vec::new();
    let mut all_pass = true;
    for id in DATASETS {
        let raw = dataset(id);
        let pco_enc = pedal_pco::compress_typed_bytes(&raw, ColumnType::F32, &cfg);
        roundtrip(id.name(), &raw, &pco_enc);
        let defl_enc = pedal_deflate::compress(&raw, pedal_deflate::Level::DEFAULT);

        let pco_ratio = raw.len() as f64 / pco_enc.len() as f64;
        let defl_ratio = raw.len() as f64 / defl_enc.len() as f64;
        let pco_t = costs.soc_lossless(Algorithm::Pco, Direction::Compress, raw.len());
        let defl_t = costs.soc_lossless(Algorithm::Deflate, Direction::Compress, raw.len());
        let time_frac = pco_t.as_secs_f64() / defl_t.as_secs_f64();

        // The gate: strictly better ratio at comparable (within 2x)
        // virtual-time cost.
        let pass = pco_ratio >= defl_ratio && time_frac <= 2.0;
        all_pass &= pass;

        t.row(vec![
            id.name().to_string(),
            format!("{:.1}", raw.len() as f64 / 1e6),
            format!("{pco_ratio:.3}"),
            format!("{defl_ratio:.3}"),
            fmt_ms(pco_t),
            fmt_ms(defl_t),
            format!("{time_frac:.2}x"),
        ]);
        rows.push(Json::obj(vec![
            ("dataset", Json::str(id.name())),
            ("bytes", Json::u64(raw.len() as u64)),
            ("pco_ratio", Json::num(pco_ratio)),
            ("deflate_ratio", Json::num(defl_ratio)),
            ("pco_compress_ns", Json::u64(pco_t.as_nanos())),
            ("deflate_compress_ns", Json::u64(defl_t.as_nanos())),
            ("time_frac_vs_deflate", Json::num(time_frac)),
            ("pass", Json::Bool(pass)),
        ]));
    }
    t.print();
    report.set("datasets", Json::Arr(rows));
    report.set("gate_ratio_beats_deflate", Json::Bool(all_pass));
    report.write();

    println!(
        "\nDEFLATE's LZ window finds little to match in high-entropy float\n\
         mantissas; pco's bijection + delta exposes the smoothness the bit\n\
         pattern hides, and the binning spends offset bits only where the\n\
         residual distribution needs them."
    );
    assert!(
        all_pass,
        "ACCEPTANCE: pco must beat the DEFLATE ratio on every float dataset \
         at <= 2x the virtual-time cost"
    );
    println!("\nacceptance: pco ratio >= DEFLATE ratio on all {} datasets  OK", DATASETS.len());
}
