//! Regenerates Table V: compression ratios of the PEDAL designs over the
//! eight datasets. Ratios come from *really compressing* the synthetic
//! stand-in datasets with the from-scratch codecs.

use bench::{banner, dataset, Table};
use pedal_datasets::DatasetId;
use pedal_sz3::{BackendKind, Dims, Field, Sz3Config};

fn main() {
    banner("Table V(a)", "Lossless compression ratios (paper values in parentheses)");
    // Paper Table V(a), keyed by dataset.
    let paper: &[(DatasetId, f64, f64, f64)] = &[
        (DatasetId::ObsError, 1.469, 1.204, 1.469),
        (DatasetId::SilesiaMozilla, 2.683, 2.319, 2.683),
        (DatasetId::SilesiaMr, 2.712, 2.348, 2.712),
        (DatasetId::SilesiaSamba, 3.963, 3.517, 3.963),
        (DatasetId::SilesiaXml, 7.769, 6.933, 7.769),
    ];
    let mut t = Table::new(vec!["Dataset", "DEFLATE", "LZ4", "zlib"]);
    for &(id, p_d, p_l, p_z) in paper {
        let data = dataset(id);
        let d = data.len() as f64
            / pedal_deflate::compress(&data, pedal_deflate::Level::DEFAULT).len() as f64;
        let l = data.len() as f64 / pedal_lz4::compress_block(&data, 1).len() as f64;
        let z = data.len() as f64
            / pedal_zlib::compress(&data, pedal_zlib::Level::DEFAULT).len() as f64;
        t.row(vec![
            id.name().to_string(),
            format!("{d:.3} ({p_d})"),
            format!("{l:.3} ({p_l})"),
            format!("{z:.3} ({p_z})"),
        ]);
    }
    t.print();

    println!();
    banner("Table V(b)", "Lossy (SZ3, eb=1e-4) compression ratios");
    let paper_sz3: &[(DatasetId, f64, f64)] = &[
        (DatasetId::Exaalt1, 2.941, 2.940),
        (DatasetId::Exaalt3, 5.745, 5.844),
        (DatasetId::Exaalt2, 5.378, 4.971),
    ];
    let mut t = Table::new(vec!["Dataset", "SZ3", "SZ3 (C-Engine)"]);
    for &(id, p_soc, p_ce) in paper_sz3 {
        let bytes = dataset(id);
        let n = bytes.len() / 4;
        let field = Field::<f32>::from_bytes(Dims::d1(n), &bytes[..n * 4]);
        // SoC design: native Zs backend; C-Engine design: DEFLATE backend.
        let soc = bytes.len() as f64
            / pedal_sz3::compress(&field, &Sz3Config::with_error_bound(1e-4)).len() as f64;
        let ce_cfg =
            Sz3Config { backend: BackendKind::Deflate, ..Sz3Config::with_error_bound(1e-4) };
        let ce = bytes.len() as f64 / pedal_sz3::compress(&field, &ce_cfg).len() as f64;
        t.row(vec![
            id.name().to_string(),
            format!("{soc:.3} ({p_soc})"),
            format!("{ce:.3} ({p_ce})"),
        ]);
    }
    t.print();
}
