//! Ablation A4: parallel and hybrid SoC+C-Engine compression — the
//! forward-looking designs the paper sketches (§IV "parallel compression
//! and decompression"; §V-C2 "hybrid design avenue for exploiting both SoC
//! and C-Engine in parallel").
//!
//! Sweeps core counts and placement strategies for chunked DEFLATE over a
//! large dataset, reporting the virtual makespan of each configuration.

use bench::{banner, dataset, fmt_ms, Table};
use pedal::parallel::{
    bottleneck, compress_chunked, decompress_chunked, sequential_time, strategy_name,
    ParallelStrategy, DEFAULT_CHUNK,
};
use pedal_datasets::DatasetId;
use pedal_doca::DocaContext;
use pedal_dpu::{Direction, Platform};

fn main() {
    banner("Ablation A4", "Parallel / hybrid chunked DEFLATE (1 MiB chunks)");
    let data = dataset(DatasetId::SilesiaMozilla);
    println!("input: {} ({:.1} MB)\n", DatasetId::SilesiaMozilla.name(), data.len() as f64 / 1e6);

    for platform in Platform::ALL {
        let doca = DocaContext::open(platform).expect("doca");
        let cores_max = platform.spec().soc_cores;
        println!(
            "[{}] sequential single-core compress: {} ms",
            platform.name(),
            fmt_ms(sequential_time(&doca.costs, Direction::Compress, data.len()))
        );
        let mut t = Table::new(vec![
            "Strategy",
            "Compress(ms)",
            "Engine share(ms)",
            "SoC share(ms)",
            "Bottleneck",
            "Decompress(ms)",
        ]);
        let mut strategies = vec![
            ParallelStrategy::SocParallel { cores: 1 },
            ParallelStrategy::SocParallel { cores: 2 },
            ParallelStrategy::SocParallel { cores: cores_max / 2 },
            ParallelStrategy::SocParallel { cores: cores_max },
            ParallelStrategy::Hybrid { soc_cores: cores_max },
        ];
        strategies.dedup();
        for strategy in strategies {
            doca.workq.reset();
            let c = compress_chunked(&doca, &data, DEFAULT_CHUNK, strategy).expect("compress");
            doca.workq.reset();
            let d = decompress_chunked(&doca, &c.bytes, data.len(), strategy).expect("decompress");
            assert_eq!(d.bytes, data, "round-trip");
            let engine_usable = c.engine_time.as_nanos() > 0;
            t.row(vec![
                strategy_name(strategy, engine_usable),
                fmt_ms(c.makespan),
                fmt_ms(c.engine_time),
                fmt_ms(c.soc_time),
                bottleneck(&c).name().to_string(),
                fmt_ms(d.makespan),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "On BF2 the engine is faster than all SoC cores combined, so the hybrid\n\
         planner sends (nearly) everything to the engine; on BF3 (no engine\n\
         compression) hybrid degenerates to SoC-parallel — scaling with cores.\n\
         For decompression the planner genuinely mixes tracks."
    );
}
