//! Shared infrastructure for the figure/table harnesses.
//!
//! Every binary in this crate regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). Results are *virtual-time* numbers
//! from the calibrated cost model, so they are identical on every host.
//!
//! Set `PEDAL_DATA_SCALE` (e.g. `0.1`) to shrink the datasets for a quick
//! pass; the shipped EXPERIMENTS.md numbers use the full Table IV sizes.

use pedal::{Datatype, Design, OverheadMode, PedalConfig, PedalContext, TimingBreakdown};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;

pub mod diff;
pub mod report;
pub use diff::{classify, compare, Better, Delta, DiffResult};
pub use report::{
    fmt_us_opt, json_ns_opt, repo_root, results_dir, write_results_file, BenchReport,
};

/// Dataset scale factor from the environment (default 1.0 = Table IV sizes).
pub fn data_scale() -> f64 {
    std::env::var("PEDAL_DATA_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v <= 1.0)
        .unwrap_or(1.0)
}

/// Generate a dataset at the configured scale.
pub fn dataset(id: DatasetId) -> Vec<u8> {
    let target = ((id.size_bytes() as f64) * data_scale()).round() as usize;
    // Keep float datasets 4-byte aligned.
    let target = if id.is_lossy_dataset() { target & !3 } else { target };
    id.generate_bytes(target.max(64))
}

/// The datatype a dataset should be fed to PEDAL as.
pub fn dataset_datatype(id: DatasetId) -> Datatype {
    if id.is_lossy_dataset() {
        Datatype::Float32
    } else {
        Datatype::Byte
    }
}

/// One measured compression + decompression pass.
#[derive(Debug, Clone, Copy)]
pub struct DesignRun {
    pub compress: TimingBreakdown,
    pub decompress: TimingBreakdown,
    pub wire_bytes: usize,
    pub original_bytes: usize,
    pub fell_back_compress: bool,
    pub fell_back_decompress: bool,
}

impl DesignRun {
    pub fn total(&self) -> TimingBreakdown {
        self.compress + self.decompress
    }

    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.wire_bytes as f64
    }

    /// The paper's Figs. 7/9 breakdown of one *execution* (compress +
    /// decompress of one dataset): initialization and buffer setup are
    /// counted once, not once per direction.
    pub fn characterization(&self) -> TimingBreakdown {
        TimingBreakdown {
            doca_init: self.compress.doca_init,
            buffer_prep: self.compress.buffer_prep,
            compress: self.compress.compress + self.compress.checksum,
            decompress: self.decompress.decompress + self.decompress.checksum,
            checksum: pedal_dpu::SimDuration::ZERO,
        }
    }
}

/// Run one design over one buffer and report the timing breakdowns.
///
/// Under [`OverheadMode::Pedal`] a warmup iteration first fills the memory
/// pool (the steady state the paper measures); under
/// [`OverheadMode::Baseline`] every iteration pays full initialization, so
/// no warmup is needed.
pub fn run_design(
    platform: Platform,
    design: Design,
    mode: OverheadMode,
    data: &[u8],
    datatype: Datatype,
) -> DesignRun {
    let cfg = PedalConfig { overhead_mode: mode, ..PedalConfig::new(platform, design) };
    let ctx = PedalContext::init(cfg).expect("context init");
    if mode == OverheadMode::Pedal {
        let warm = ctx.compress(datatype, data).expect("warmup compress");
        let _ = ctx.decompress(&warm.payload, data.len()).expect("warmup decompress");
    }
    let packed = ctx.compress(datatype, data).expect("compress");
    let out = ctx.decompress(&packed.payload, data.len()).expect("decompress");
    DesignRun {
        compress: packed.timing,
        decompress: out.timing,
        wire_bytes: packed.wire_len(),
        original_bytes: data.len(),
        fell_back_compress: packed.fell_back,
        fell_back_decompress: out.fell_back,
    }
}

// ---------------------------------------------------------------------
// Plain-text table printer (fixed-width columns, like the paper's tables)
// ---------------------------------------------------------------------

/// Minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |ws: &[usize]| {
            let mut s = String::from("+");
            for w in ws {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        println!("{}", line(&widths));
        let fmt_row = |cells: &[String], ws: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(ws) {
                s.push_str(&format!(" {:<width$} |", c, width = w));
            }
            s
        };
        println!("{}", fmt_row(&self.headers, &widths));
        println!("{}", line(&widths));
        for row in &self.rows {
            println!("{}", fmt_row(row, &widths));
        }
        println!("{}", line(&widths));
    }
}

/// Format a virtual duration in milliseconds with sensible precision.
pub fn fmt_ms(d: pedal_dpu::SimDuration) -> String {
    let ms = d.as_millis_f64();
    if ms >= 100.0 {
        format!("{ms:.1}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

/// Print the standard harness banner.
pub fn banner(artifact: &str, what: &str) {
    println!("=== {artifact} — {what} ===");
    let scale = data_scale();
    if (scale - 1.0).abs() > 1e-9 {
        println!("(PEDAL_DATA_SCALE = {scale}: dataset sizes scaled down; shapes hold)");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "22"]);
        t.row(vec!["333", "4"]);
        t.print();
    }

    #[test]
    fn run_design_produces_sane_output() {
        std::env::set_var("PEDAL_DATA_SCALE", "0.01");
        let data = dataset(DatasetId::SilesiaXml);
        let run = run_design(
            Platform::BlueField2,
            Design::CE_DEFLATE,
            OverheadMode::Pedal,
            &data,
            Datatype::Byte,
        );
        assert!(run.ratio() > 2.0);
        assert!(run.compress.total().as_nanos() > 0);
        assert!(run.decompress.total().as_nanos() > 0);
        std::env::remove_var("PEDAL_DATA_SCALE");
    }
}
