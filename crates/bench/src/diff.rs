//! Bench-regression gate: compare a current `BENCH_*.json` against a
//! committed baseline and flag threshold-crossing regressions.
//!
//! Every harness writes virtual-time numbers, so run-to-run noise is
//! zero on an unchanged tree — any delta is a real behaviour change.
//! The gate still uses a relative threshold (default 20%) so small
//! intentional cost-model recalibrations don't demand a lockstep
//! baseline refresh for every key.
//!
//! Keys are classified by name: throughput/speedup/ratio-style keys
//! regress when they *drop*, latency/duration keys when they *rise*.
//! Unclassified keys (counts, ids, configuration echoes) are ignored —
//! a gate that guesses wrong on direction is worse than one that
//! abstains.

use pedal_obs::Json;

/// Which direction is an improvement for a metric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    Higher,
    Lower,
}

/// Classify a JSON key by its name; `None` means "not a gated metric".
pub fn classify(key: &str) -> Option<Better> {
    // `mbps` generalizes throughput_mbps to the fleet tier's
    // goodput_mbps and the live plane's mbps_in; `met_slo` and the
    // rate suffix cover the fleet/service serving metrics.
    // `ratio_cost` measures ratio *given up* (adaptive vs best static) —
    // check before the generic ratio rules so it gates downward.
    if key.contains("ratio_cost") {
        return Some(Better::Lower);
    }
    if key.contains("mbps")
        || key.contains("goodput")
        || key.contains("speedup")
        || key.contains("attainment")
        || key.contains("overlap_efficiency")
        || key.contains("met_slo")
        || key.contains("gain_pct")
        || key.ends_with("_per_sec")
        || key == "ratio"
        || key.ends_with("_ratio")
        || key.starts_with("ratio_vs")
    {
        return Some(Better::Higher);
    }
    // On a fixed open-loop trace, shedding more means serving less —
    // shed counts regress upward, like latencies.
    if key.contains("slowdown")
        || key.contains("shed")
        || key.ends_with("_ns")
        || key.ends_with("_us")
        || key.ends_with("_ms")
    {
        return Some(Better::Lower);
    }
    None
}

/// One threshold-crossing metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path into the report (`sections[2].latency_p99_ns`).
    pub path: String,
    pub base: f64,
    pub current: f64,
    /// Relative change in the *bad* direction (0.25 = 25% worse).
    pub worse_by: f64,
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct DiffResult {
    /// Gated numeric keys present in both documents.
    pub compared: usize,
    pub regressions: Vec<Delta>,
}

impl DiffResult {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare two parsed reports. Keys present in only one document are
/// skipped (new metrics don't fail the gate; removing one stops gating
/// it). Zero or non-finite baselines are skipped — a relative threshold
/// against zero is meaningless.
pub fn compare(base: &Json, current: &Json, threshold: f64) -> DiffResult {
    let mut out = DiffResult::default();
    walk("", "", base, current, threshold, &mut out);
    out
}

fn walk(path: &str, key: &str, base: &Json, current: &Json, th: f64, out: &mut DiffResult) {
    match (base, current) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (k, bv) in b {
                if let Some(cv) = c.iter().find(|(ck, _)| ck == k).map(|(_, v)| v) {
                    let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                    walk(&sub, k, bv, cv, th, out);
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                walk(&format!("{path}[{i}]"), key, bv, cv, th, out);
            }
        }
        (Json::Num(b), Json::Num(c)) => {
            let Some(dir) = classify(key) else { return };
            if !b.is_finite() || !c.is_finite() || *b == 0.0 {
                return;
            }
            out.compared += 1;
            let worse_by = match dir {
                Better::Higher => (b - c) / b,
                Better::Lower => (c - b) / b,
            };
            if worse_by > th {
                out.regressions.push(Delta {
                    path: path.to_string(),
                    base: *b,
                    current: *c,
                    worse_by,
                });
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedal_obs::parse_json;

    #[test]
    fn key_classification_by_name() {
        assert_eq!(classify("throughput_mbps"), Some(Better::Higher));
        assert_eq!(classify("ratio"), Some(Better::Higher));
        assert_eq!(classify("wire_ratio"), Some(Better::Higher));
        assert_eq!(classify("speedup_vs_1ch"), Some(Better::Higher));
        assert_eq!(classify("attainment"), Some(Better::Higher));
        assert_eq!(classify("overlap_efficiency"), Some(Better::Higher));
        assert_eq!(classify("latency_p99_ns"), Some(Better::Lower));
        assert_eq!(classify("makespan_ns"), Some(Better::Lower));
        assert_eq!(classify("slowdown"), Some(Better::Lower));
        assert_eq!(classify("jobs_completed"), None);
        assert_eq!(classify("queue_depth"), None);
    }

    /// The fleet tier's metric names must not abstain silently.
    #[test]
    fn fleet_keys_are_classified() {
        assert_eq!(classify("goodput_mbps"), Some(Better::Higher));
        assert_eq!(classify("mbps_in"), Some(Better::Higher));
        assert_eq!(classify("paying_attainment"), Some(Better::Higher));
        assert_eq!(classify("met_slo"), Some(Better::Higher));
        assert_eq!(classify("completed_per_sec"), Some(Better::Higher));
        assert_eq!(classify("shed"), Some(Better::Lower));
        assert_eq!(classify("best_effort_shed_total"), Some(Better::Lower));
        assert_eq!(classify("shed_bucket"), Some(Better::Lower));
        assert_eq!(classify("latency_p99_ns"), Some(Better::Lower));
        // Still-unclassified names keep abstaining (counts, echoes).
        assert_eq!(classify("stored"), None);
        assert_eq!(classify("placement_records"), None);
    }

    /// The adaptive-policy tier's metric names must not abstain silently.
    #[test]
    fn adaptive_keys_are_classified() {
        assert_eq!(classify("adaptive_goodput_mbps"), Some(Better::Higher));
        assert_eq!(classify("best_static_goodput_mbps"), Some(Better::Higher));
        assert_eq!(classify("goodput_gain_pct"), Some(Better::Higher));
        assert_eq!(classify("adaptive_ratio"), Some(Better::Higher));
        assert_eq!(classify("best_static_ratio"), Some(Better::Higher));
        // How much of the best static ratio adaptive keeps: dropping is
        // the regression.
        assert_eq!(classify("ratio_vs_best_static"), Some(Better::Higher));
        // Ratio *given up* gates in the opposite direction.
        assert_eq!(classify("ratio_cost_pct"), Some(Better::Lower));
        // Counts and digests keep abstaining.
        assert_eq!(classify("policy_decisions"), None);
        assert_eq!(classify("policy_digest"), None);
        assert_eq!(classify("stored_round_trips_checked"), None);
    }

    #[test]
    fn identical_documents_pass() {
        let doc = parse_json(
            r#"{"throughput_mbps": 120.5, "latency_p99_ns": 40000, "jobs": 100,
                "rows": [{"ratio": 3.1}, {"ratio": 2.2}]}"#,
        )
        .unwrap();
        let res = compare(&doc, &doc, 0.2);
        assert!(res.passed());
        assert_eq!(res.compared, 4);
    }

    /// The acceptance fixture: a synthetic ≥20% regression must fail.
    #[test]
    fn twenty_percent_regression_fails_the_gate() {
        let base = parse_json(r#"{"throughput_mbps": 100.0, "latency_p99_ns": 1000}"#).unwrap();
        let worse = parse_json(r#"{"throughput_mbps": 75.0, "latency_p99_ns": 1300}"#).unwrap();
        let res = compare(&base, &worse, 0.2);
        assert_eq!(res.regressions.len(), 2);
        let tp = &res.regressions[0];
        assert_eq!(tp.path, "throughput_mbps");
        assert!((tp.worse_by - 0.25).abs() < 1e-9);
        // Within threshold: a 10% drift passes.
        let drift = parse_json(r#"{"throughput_mbps": 90.0, "latency_p99_ns": 1100}"#).unwrap();
        assert!(compare(&base, &drift, 0.2).passed());
    }

    #[test]
    fn improvements_never_flag() {
        let base = parse_json(r#"{"throughput_mbps": 100.0, "latency_p99_ns": 1000}"#).unwrap();
        let better = parse_json(r#"{"throughput_mbps": 400.0, "latency_p99_ns": 10}"#).unwrap();
        assert!(compare(&base, &better, 0.2).passed());
    }

    #[test]
    fn zero_baselines_and_missing_keys_are_skipped() {
        let base = parse_json(r#"{"throughput_mbps": 0.0, "old_ns": 5}"#).unwrap();
        let cur = parse_json(r#"{"throughput_mbps": 50.0, "new_ns": 9}"#).unwrap();
        let res = compare(&base, &cur, 0.2);
        assert!(res.passed());
        assert_eq!(res.compared, 0);
    }

    #[test]
    fn nested_paths_name_the_offending_key() {
        let base = parse_json(r#"{"rows": [{"makespan_ns": 100}, {"makespan_ns": 100}]}"#).unwrap();
        let cur = parse_json(r#"{"rows": [{"makespan_ns": 100}, {"makespan_ns": 200}]}"#).unwrap();
        let res = compare(&base, &cur, 0.2);
        assert_eq!(res.regressions.len(), 1);
        assert_eq!(res.regressions[0].path, "rows[1].makespan_ns");
    }
}
