//! Machine-readable result emission for the harness binaries.
//!
//! Every harness prints its human-facing tables to stdout as before, and
//! additionally writes a `results/BENCH_<name>.json` document so scripts
//! (and the verify gate) can consume the same numbers without scraping
//! table text. Each `BENCH_<name>.json` is also mirrored at the
//! repository root, where the verify gate asserts its presence. Traced
//! runs drop their Chrome trace / metrics JSONL next to the `results/`
//! copy. All serialization goes through `pedal_obs::Json` — the repo
//! carries no external serde dependency.

use std::path::PathBuf;

use pedal_dpu::SimDuration;
use pedal_obs::Json;

/// The shared `results/` directory at the repository root, independent
/// of the invoking working directory. Created on first use.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the repo root")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results/");
    dir
}

/// Write `contents` to `results/<filename>`, returning the full path.
pub fn write_results_file(filename: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(filename);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Accumulates one harness run's machine-readable output and writes it
/// as `results/BENCH_<name>.json`.
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Json)>,
}

impl BenchReport {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let fields = vec![
            ("artifact".to_string(), Json::str(&name)),
            ("time_base".into(), Json::str("virtual-ns")),
        ];
        Self { name, fields }
    }

    /// Attach one top-level section (scalar, array, or object).
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Write `results/BENCH_<name>.json`, mirror it at the repository
    /// root, and report where the primary copy went.
    pub fn write(&self) -> PathBuf {
        let doc = Json::Obj(self.fields.clone()).to_string();
        let filename = format!("BENCH_{}.json", self.name);
        let path = write_results_file(&filename, &doc);
        let mirror = repo_root().join(&filename);
        std::fs::write(&mirror, &doc)
            .unwrap_or_else(|e| panic!("mirror {}: {e}", mirror.display()));
        println!("\n[report] {} (mirrored at {})", path.display(), mirror.display());
        path
    }
}

/// The repository root (two levels above the bench crate).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf()
}

/// `Option<SimDuration>` as microseconds for table cells: `-` when the
/// percentile has no samples.
pub fn fmt_us_opt(d: Option<SimDuration>) -> String {
    match d {
        Some(d) => format!("{:.1}", d.as_micros_f64()),
        None => "-".to_string(),
    }
}

/// `Option<SimDuration>` as JSON nanoseconds (`null` when empty).
pub fn json_ns_opt(d: Option<SimDuration>) -> Json {
    match d {
        Some(d) => Json::u64(d.as_nanos()),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_strict_parser() {
        let mut r = BenchReport::new("unit_test");
        r.set("rows", Json::Arr(vec![Json::obj(vec![("x", Json::u64(1))])]));
        let doc = Json::Obj(r.fields.clone()).to_string();
        let parsed = pedal_obs::parse_json(&doc).expect("valid json");
        assert_eq!(parsed.get("artifact").and_then(Json::as_str), Some("unit_test"));
    }

    #[test]
    fn write_mirrors_report_at_repo_root() {
        let mut r = BenchReport::new("report_mirror_unit_test");
        r.set("ok", Json::u64(1));
        let primary = r.write();
        let mirror = repo_root().join("BENCH_report_mirror_unit_test.json");
        let a = std::fs::read_to_string(&primary).expect("primary written");
        let b = std::fs::read_to_string(&mirror).expect("mirror written");
        assert_eq!(a, b, "root mirror must be byte-identical");
        let _ = std::fs::remove_file(primary);
        let _ = std::fs::remove_file(mirror);
    }

    #[test]
    fn optional_durations_format_and_serialize() {
        assert_eq!(fmt_us_opt(None), "-");
        assert_eq!(fmt_us_opt(Some(SimDuration::from_micros(12))), "12.0");
        assert_eq!(json_ns_opt(None), Json::Null);
    }
}
