//! Property-based tests of the message-passing runtime: payload integrity
//! under random shapes/orders, collective correctness against sequential
//! references, and virtual-time sanity.

use bytes::Bytes;
use pedal_dpu::Platform;
use pedal_mpi::{allreduce, bcast, gather, reduce, run_world, WorldConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pingpong_payload_integrity(
        data in proptest::collection::vec(any::<u8>(), 0..100_000),
        eager_threshold in prop_oneof![Just(64usize), Just(4096), Just(1 << 20)],
    ) {
        let expected = data.clone();
        let results = run_world(
            WorldConfig::new(2, Platform::BlueField2).with_eager_threshold(eager_threshold),
            move |mpi| {
                if mpi.rank == 0 {
                    mpi.send(1, 1, Bytes::from(data.clone())).unwrap();
                    let (echo, _) = mpi.recv(1, 2).unwrap();
                    echo.to_vec()
                } else {
                    let (msg, _) = mpi.recv(0, 1).unwrap();
                    mpi.send(0, 2, msg.clone()).unwrap();
                    msg.to_vec()
                }
            },
        );
        prop_assert_eq!(&results[0], &expected);
        prop_assert_eq!(&results[1], &expected);
    }

    #[test]
    fn bcast_delivers_same_bytes_to_all(
        n_ranks in 2usize..7,
        root_seed in any::<u64>(),
        len in 1usize..40_000,
    ) {
        let root = (root_seed % n_ranks as u64) as usize;
        let payload: Vec<u8> = (0..len).map(|i| (i as u64 ^ root_seed) as u8).collect();
        let expected = payload.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField3), move |mpi| {
            let data = if mpi.rank == root { Some(Bytes::from(payload.clone())) } else { None };
            let (msg, _) = bcast(mpi, root, data).unwrap();
            msg.to_vec()
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn reduce_matches_sequential_reference(
        n_ranks in 2usize..6,
        values in proptest::collection::vec(-1e6f64..1e6, 1..50),
    ) {
        let len = values.len();
        let vals = values.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            // Rank r contributes values rotated by r.
            let local: Vec<f64> =
                (0..len).map(|i| vals[(i + mpi.rank) % len]).collect();
            reduce(mpi, 0, local, |a, b| a + b).unwrap()
        });
        let got = results[0].as_ref().unwrap();
        for i in 0..len {
            let want: f64 =
                (0..n_ranks).map(|r| values[(i + r) % len]).sum();
            prop_assert!((got[i] - want).abs() < 1e-6 * want.abs().max(1.0));
        }
    }

    #[test]
    fn allreduce_is_uniform(
        n_ranks in 2usize..6,
        x in -100.0f64..100.0,
    ) {
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            allreduce(mpi, vec![x + mpi.rank as f64], |a, b| a.max(b)).unwrap()
        });
        let expect = x + (n_ranks - 1) as f64;
        for r in &results {
            prop_assert!((r[0] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn gather_preserves_rank_payloads(
        n_ranks in 2usize..6,
        sizes in proptest::collection::vec(0usize..5_000, 6),
    ) {
        let sizes_cl = sizes.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            let len = sizes_cl[mpi.rank % sizes_cl.len()];
            let mine = vec![mpi.rank as u8; len];
            gather(mpi, 0, Bytes::from(mine)).unwrap()
        });
        let at_root = &results[0];
        prop_assert_eq!(at_root.len(), n_ranks);
        for (rank, payload) in at_root.iter().enumerate() {
            prop_assert_eq!(payload.len(), sizes[rank % sizes.len()]);
            prop_assert!(payload.iter().all(|&b| b == rank as u8));
        }
    }

    #[test]
    fn virtual_time_monotonic_and_deterministic(
        len_a in 1usize..2_000_000,
        len_b in 1usize..2_000_000,
    ) {
        let run = || {
            run_world(WorldConfig::new(2, Platform::BlueField2), move |mpi| {
                if mpi.rank == 0 {
                    mpi.send(1, 1, Bytes::from(vec![1u8; len_a])).unwrap();
                    mpi.send(1, 2, Bytes::from(vec![2u8; len_b])).unwrap();
                    0u64
                } else {
                    let (_, t1) = mpi.recv(0, 1).unwrap();
                    let (_, t2) = mpi.recv(0, 2).unwrap();
                    assert!(t2 >= t1, "virtual time went backwards");
                    t2.0
                }
            })[1]
        };
        prop_assert_eq!(run(), run());
    }
}
