//! Seeded random tests of the message-passing runtime: payload integrity
//! under random shapes/orders, collective correctness against sequential
//! references, and virtual-time sanity. Ported from proptest to an in-tree
//! fixed-seed case generator (`--features fuzz` multiplies case counts).

use pedal_dpu::{Pcg32, Platform};
use pedal_mpi::{allreduce, bcast, gather, reduce, run_world, Bytes, WorldConfig};

fn cases(base: usize) -> usize {
    if cfg!(feature = "fuzz") {
        base * 16
    } else {
        base
    }
}

#[test]
fn pingpong_payload_integrity() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0001);
    for case in 0..cases(8) {
        let mut data = vec![0u8; rng.gen_range(0usize..100_000)];
        rng.fill_bytes(&mut data);
        let eager_threshold = [64usize, 4096, 1 << 20][rng.gen_range(0usize..3)];
        let expected = data.clone();
        let results = run_world(
            WorldConfig::new(2, Platform::BlueField2).with_eager_threshold(eager_threshold),
            move |mpi| {
                if mpi.rank == 0 {
                    mpi.send(1, 1, Bytes::from(data.clone())).unwrap();
                    let (echo, _) = mpi.recv(1, 2).unwrap();
                    echo.to_vec()
                } else {
                    let (msg, _) = mpi.recv(0, 1).unwrap();
                    mpi.send(0, 2, msg.clone()).unwrap();
                    msg.to_vec()
                }
            },
        );
        assert_eq!(results[0], expected, "case {case}");
        assert_eq!(results[1], expected, "case {case}");
    }
}

#[test]
fn bcast_delivers_same_bytes_to_all() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0002);
    for case in 0..cases(8) {
        let n_ranks = rng.gen_range(2usize..7);
        let root_seed = rng.gen::<u64>();
        let len = rng.gen_range(1usize..40_000);
        let root = (root_seed % n_ranks as u64) as usize;
        let payload: Vec<u8> = (0..len).map(|i| (i as u64 ^ root_seed) as u8).collect();
        let expected = payload.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField3), move |mpi| {
            let data = if mpi.rank == root { Some(Bytes::from(payload.clone())) } else { None };
            let (msg, _) = bcast(mpi, root, data).unwrap();
            msg.to_vec()
        });
        for r in results {
            assert_eq!(r, expected, "case {case}");
        }
    }
}

#[test]
fn reduce_matches_sequential_reference() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0003);
    for case in 0..cases(8) {
        let n_ranks = rng.gen_range(2usize..6);
        let values: Vec<f64> =
            (0..rng.gen_range(1usize..50)).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let len = values.len();
        let vals = values.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            // Rank r contributes values rotated by r.
            let local: Vec<f64> = (0..len).map(|i| vals[(i + mpi.rank) % len]).collect();
            reduce(mpi, 0, local, |a, b| a + b).unwrap()
        });
        let got = results[0].as_ref().unwrap();
        for i in 0..len {
            let want: f64 = (0..n_ranks).map(|r| values[(i + r) % len]).sum();
            assert!((got[i] - want).abs() < 1e-6 * want.abs().max(1.0), "case {case} idx {i}");
        }
    }
}

#[test]
fn allreduce_is_uniform() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0004);
    for case in 0..cases(8) {
        let n_ranks = rng.gen_range(2usize..6);
        let x = rng.gen_range(-100.0f64..100.0);
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            allreduce(mpi, vec![x + mpi.rank as f64], |a, b| a.max(b)).unwrap()
        });
        let expect = x + (n_ranks - 1) as f64;
        for r in &results {
            assert!((r[0] - expect).abs() < 1e-12, "case {case}");
        }
    }
}

#[test]
fn gather_preserves_rank_payloads() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0005);
    for case in 0..cases(8) {
        let n_ranks = rng.gen_range(2usize..6);
        let sizes: Vec<usize> = (0..6).map(|_| rng.gen_range(0usize..5_000)).collect();
        let sizes_cl = sizes.clone();
        let results = run_world(WorldConfig::new(n_ranks, Platform::BlueField2), move |mpi| {
            let len = sizes_cl[mpi.rank % sizes_cl.len()];
            let mine = vec![mpi.rank as u8; len];
            gather(mpi, 0, Bytes::from(mine)).unwrap()
        });
        let at_root = &results[0];
        assert_eq!(at_root.len(), n_ranks, "case {case}");
        for (rank, payload) in at_root.iter().enumerate() {
            assert_eq!(payload.len(), sizes[rank % sizes.len()], "case {case} rank {rank}");
            assert!(payload.iter().all(|&b| b == rank as u8), "case {case} rank {rank}");
        }
    }
}

#[test]
fn virtual_time_monotonic_and_deterministic() {
    let mut rng = Pcg32::seed_from_u64(0x3591_0006);
    for case in 0..cases(8) {
        let len_a = rng.gen_range(1usize..2_000_000);
        let len_b = rng.gen_range(1usize..2_000_000);
        let run = || {
            run_world(WorldConfig::new(2, Platform::BlueField2), move |mpi| {
                if mpi.rank == 0 {
                    mpi.send(1, 1, Bytes::from(vec![1u8; len_a])).unwrap();
                    mpi.send(1, 2, Bytes::from(vec![2u8; len_b])).unwrap();
                    0u64
                } else {
                    let (_, t1) = mpi.recv(0, 1).unwrap();
                    let (_, t2) = mpi.recv(0, 2).unwrap();
                    assert!(t2 >= t1, "virtual time went backwards");
                    t2.0
                }
            })[1]
        };
        assert_eq!(run(), run(), "case {case}");
    }
}
