//! Collective operations built on the point-to-point layer: binomial-tree
//! Broadcast (the paper's Fig. 11 workload), Barrier, Gather, and Reduce.

use crate::comm::{MpiError, RankCtx};
use pedal_dpu::Bytes;
use pedal_dpu::SimInstant;

/// Tag space reserved for collectives (high bit set keeps them clear of
/// user point-to-point tags).
const COLL_TAG_BASE: u64 = 1 << 63;

/// Binomial-tree broadcast from `root`. Returns the payload (every rank)
/// and this rank's virtual completion time.
///
/// The tree matches MPICH's binomial algorithm: in round `k`, ranks whose
/// relative id is below 2^k forward to relative id + 2^k.
pub fn bcast(
    ctx: &mut RankCtx,
    root: usize,
    data: Option<Bytes>,
) -> Result<(Bytes, SimInstant), MpiError> {
    let size = ctx.size;
    let rel = (ctx.rank + size - root) % size;
    let tag = COLL_TAG_BASE | 0x42;

    let mut payload = if ctx.rank == root {
        data.expect("root must supply the broadcast payload")
    } else {
        Bytes::new()
    };

    // Receive phase (non-root): find the round in which we are reached.
    if rel != 0 {
        // Our parent is rel with the highest set bit cleared.
        let highest = usize::BITS - 1 - rel.leading_zeros();
        let parent_rel = rel & !(1usize << highest);
        let parent = (parent_rel + root) % size;
        let (msg, _) = ctx.recv(parent, tag)?;
        payload = msg;
    }

    // Forward phase: send to children in increasing round order.
    let mut k = if rel == 0 { 1usize } else { 1usize << (usize::BITS - rel.leading_zeros()) };
    while rel + k < size {
        if rel < k || rel == 0 {
            let child = (rel + k + root) % size;
            ctx.send(child, tag, payload.clone())?;
        }
        k <<= 1;
    }

    Ok((payload, ctx.now()))
}

/// Barrier: a trivially correct dissemination barrier.
pub fn barrier(ctx: &mut RankCtx) -> Result<SimInstant, MpiError> {
    let size = ctx.size;
    let tag = COLL_TAG_BASE | 0xBA;
    let mut round = 1usize;
    while round < size {
        let to = (ctx.rank + round) % size;
        let from = (ctx.rank + size - round) % size;
        ctx.send(to, tag + round as u64, Bytes::new())?;
        let _ = ctx.recv(from, tag + round as u64)?;
        round <<= 1;
    }
    Ok(ctx.now())
}

/// Gather byte payloads to `root`. Non-root ranks receive an empty vec.
pub fn gather(ctx: &mut RankCtx, root: usize, data: Bytes) -> Result<Vec<Bytes>, MpiError> {
    let tag = COLL_TAG_BASE | 0x6A;
    if ctx.rank == root {
        let mut out: Vec<Bytes> = vec![Bytes::new(); ctx.size];
        out[root] = data;
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                let (msg, _) = ctx.recv(src, tag)?;
                *slot = msg;
            }
        }
        Ok(out)
    } else {
        ctx.send(root, tag, data)?;
        Ok(Vec::new())
    }
}

/// Reduce f64 vectors elementwise with `op` onto `root` via a binomial
/// tree (children fold into parents). Returns Some(result) at root.
pub fn reduce(
    ctx: &mut RankCtx,
    root: usize,
    mut local: Vec<f64>,
    op: fn(f64, f64) -> f64,
) -> Result<Option<Vec<f64>>, MpiError> {
    let size = ctx.size;
    let rel = (ctx.rank + size - root) % size;
    let tag = COLL_TAG_BASE | 0x5E;

    let mut k = 1usize;
    while k < size {
        if rel & k != 0 {
            // Send our partial to the parent and exit.
            let parent = ((rel & !k) + root) % size;
            ctx.send(parent, tag, f64s_to_bytes(&local))?;
            return Ok(None);
        }
        if rel + k < size {
            let child = (rel + k + root) % size;
            let (msg, _) = ctx.recv(child, tag)?;
            let other = bytes_to_f64s(&msg);
            assert_eq!(other.len(), local.len(), "reduce length mismatch");
            for (a, b) in local.iter_mut().zip(other) {
                *a = op(*a, b);
            }
        }
        k <<= 1;
    }
    Ok(Some(local))
}

/// Allreduce = reduce + bcast (MPICH's default for large payloads).
pub fn allreduce(
    ctx: &mut RankCtx,
    local: Vec<f64>,
    op: fn(f64, f64) -> f64,
) -> Result<Vec<f64>, MpiError> {
    let reduced = reduce(ctx, 0, local, op)?;
    let payload = reduced.map(|v| f64s_to_bytes(&v));
    let (bytes, _) = bcast(ctx, 0, payload)?;
    Ok(bytes_to_f64s(&bytes))
}

fn f64s_to_bytes(v: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(out)
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_world, WorldConfig};
    use pedal_dpu::Platform;

    fn world(n: usize) -> WorldConfig {
        WorldConfig::new(n, Platform::BlueField2)
    }

    #[test]
    fn bcast_reaches_every_rank() {
        for size in [1usize, 2, 3, 4, 5, 8, 13] {
            for root in [0, size - 1, size / 2] {
                let results = run_world(world(size), move |ctx| {
                    let data = if ctx.rank == root {
                        Some(Bytes::from(vec![0xCD; 100_000]))
                    } else {
                        None
                    };
                    let (payload, _) = bcast(ctx, root, data).unwrap();
                    payload
                });
                for (rank, payload) in results.iter().enumerate() {
                    assert_eq!(payload.len(), 100_000, "size {size} root {root} rank {rank}");
                    assert!(payload.iter().all(|&b| b == 0xCD));
                }
            }
        }
    }

    #[test]
    fn bcast_four_nodes_has_two_rounds_of_latency() {
        // With 4 nodes the binomial tree is depth 2: the last receiver's
        // completion is ~2 rendezvous transfers, not 3.
        let n = 5_100_000usize;
        let results = run_world(world(4), move |ctx| {
            let data = if ctx.rank == 0 { Some(Bytes::from(vec![7u8; n])) } else { None };
            let (_, done) = bcast(ctx, 0, data).unwrap();
            done.0
        });
        let one_hop = {
            let costs = pedal_dpu::CostModel::for_platform(Platform::BlueField2);
            (costs.network.latency * 2 + costs.network_transfer(n)).as_nanos()
        };
        let slowest = *results.iter().max().unwrap();
        assert!(slowest >= one_hop, "at least one transfer");
        assert!(
            slowest < 3 * one_hop,
            "binomial depth for 4 ranks is 2: {slowest} vs one hop {one_hop}"
        );
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let results = run_world(world(6), |ctx| {
            // Stagger the clocks wildly.
            ctx.compute(pedal_dpu::SimDuration::from_millis(ctx.rank as u64 * 10));
            barrier(ctx).unwrap().0
        });
        let max = *results.iter().max().unwrap();
        for t in &results {
            // All ranks finish the barrier no earlier than the slowest
            // rank's entry time (50 ms).
            assert!(*t >= 50_000_000, "barrier exited early: {t}");
            assert!(*t <= max);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run_world(world(5), |ctx| {
            let mine = Bytes::from(vec![ctx.rank as u8; ctx.rank + 1]);
            gather(ctx, 2, mine).unwrap()
        });
        let at_root = &results[2];
        assert_eq!(at_root.len(), 5);
        for (rank, payload) in at_root.iter().enumerate() {
            assert_eq!(payload.len(), rank + 1);
            assert!(payload.iter().all(|&b| b == rank as u8));
        }
        assert!(results[0].is_empty());
    }

    #[test]
    fn reduce_sums_correctly() {
        let results = run_world(world(7), |ctx| {
            let local = vec![ctx.rank as f64, 1.0, -(ctx.rank as f64)];
            reduce(ctx, 0, local, |a, b| a + b).unwrap()
        });
        let total: f64 = (0..7).map(|r| r as f64).sum();
        assert_eq!(results[0].as_ref().unwrap(), &vec![total, 7.0, -total]);
        assert!(results[1].is_none());
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        let results = run_world(world(4), |ctx| {
            allreduce(ctx, vec![ctx.rank as f64 + 1.0], |a, b| a * b).unwrap()
        });
        for r in &results {
            assert_eq!(r, &vec![24.0]); // 1*2*3*4
        }
    }
}

/// Scatter: the root distributes one payload per rank. Returns this rank's
/// slice.
pub fn scatter(
    ctx: &mut RankCtx,
    root: usize,
    data: Option<Vec<Bytes>>,
) -> Result<Bytes, MpiError> {
    let tag = COLL_TAG_BASE | 0x5C;
    if ctx.rank == root {
        let parts = data.expect("root must supply one payload per rank");
        assert_eq!(parts.len(), ctx.size, "scatter needs size payloads");
        let mut mine = Bytes::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == root {
                mine = part;
            } else {
                ctx.send(dst, tag, part)?;
            }
        }
        Ok(mine)
    } else {
        let (msg, _) = ctx.recv(root, tag)?;
        Ok(msg)
    }
}

/// All-to-all personalized exchange: rank i sends `parts[j]` to rank j and
/// receives one payload from every rank, returned in rank order.
///
/// Uses the classic pairwise-exchange schedule (`partner = rank ^ step` for
/// power-of-two sizes, ring otherwise), which is deadlock-free with
/// blocking rendezvous sends.
pub fn alltoall(ctx: &mut RankCtx, parts: Vec<Bytes>) -> Result<Vec<Bytes>, MpiError> {
    assert_eq!(parts.len(), ctx.size, "alltoall needs size payloads");
    let tag = COLL_TAG_BASE | 0xA2A;
    let size = ctx.size;
    let mut out: Vec<Bytes> = vec![Bytes::new(); size];
    out[ctx.rank] = parts[ctx.rank].clone();
    for step in 1..size {
        // Ring schedule: send to (rank+step), receive from (rank-step).
        let to = (ctx.rank + step) % size;
        let from = (ctx.rank + size - step) % size;
        // Lower rank of a pair sends first only matters for blocking RNDV;
        // isend breaks the cycle regardless of sizes.
        let h = ctx.isend(to, tag + step as u64, parts[to].clone())?;
        let (msg, _) = ctx.recv(from, tag + step as u64)?;
        h.wait(ctx)?;
        out[from] = msg;
    }
    Ok(out)
}

#[cfg(test)]
mod scatter_alltoall_tests {
    use super::*;
    use crate::comm::{run_world, WorldConfig};
    use pedal_dpu::Platform;

    #[test]
    fn scatter_distributes_distinct_parts() {
        for size in [1usize, 2, 5, 8] {
            let results = run_world(WorldConfig::new(size, Platform::BlueField2), move |ctx| {
                let data = if ctx.rank == 2 % size {
                    Some(
                        (0..size)
                            .map(|r| Bytes::from(vec![r as u8; r * 100 + 1]))
                            .collect::<Vec<_>>(),
                    )
                } else {
                    None
                };
                scatter(ctx, 2 % size, data).unwrap()
            });
            for (rank, part) in results.iter().enumerate() {
                assert_eq!(part.len(), rank * 100 + 1, "size {size} rank {rank}");
                assert!(part.iter().all(|&b| b == rank as u8));
            }
        }
    }

    #[test]
    fn alltoall_full_exchange() {
        for size in [1usize, 2, 3, 4, 6, 8] {
            let results = run_world(WorldConfig::new(size, Platform::BlueField3), move |ctx| {
                // parts[j] = [i*16 + j; ...] from rank i to rank j.
                let parts: Vec<Bytes> = (0..size)
                    .map(|j| Bytes::from(vec![(ctx.rank * 16 + j) as u8; 64 + j]))
                    .collect();
                alltoall(ctx, parts).unwrap()
            });
            for (me, got) in results.iter().enumerate() {
                assert_eq!(got.len(), size);
                for (from, payload) in got.iter().enumerate() {
                    assert_eq!(payload.len(), 64 + me, "size {size}: {from}->{me}");
                    assert!(
                        payload.iter().all(|&b| b == (from * 16 + me) as u8),
                        "size {size}: wrong payload {from}->{me}"
                    );
                }
            }
        }
    }

    #[test]
    fn alltoall_with_rendezvous_sized_payloads() {
        // Large payloads force the RNDV path; isend keeps it deadlock-free.
        let results = run_world(WorldConfig::new(4, Platform::BlueField2), |ctx| {
            let parts: Vec<Bytes> = (0..4).map(|j| Bytes::from(vec![j as u8; 1_000_000])).collect();
            alltoall(ctx, parts).unwrap()
        });
        for got in &results {
            for (from, payload) in got.iter().enumerate() {
                let _ = from;
                assert_eq!(payload.len(), 1_000_000);
            }
        }
    }
}
