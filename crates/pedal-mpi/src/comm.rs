//! Point-to-point message passing with Eager and Rendezvous protocols over
//! a latency/bandwidth network model, carrying per-rank virtual clocks.
//!
//! Ranks are OS threads; real bytes move over `std::sync::mpsc` channels,
//! while the virtual time of each transfer is computed from the platform's
//! network
//! model exactly like a PDES with Lamport-merged clocks:
//!
//! * **Eager** (small messages): the sender copies into an eager buffer and
//!   returns immediately; the message arrives at
//!   `sent_at + latency + size/bandwidth`.
//! * **Rendezvous** (large messages): sender and receiver handshake
//!   (RTS + CTS = two latencies) and the bulk transfer starts only when
//!   both are ready — the sender *blocks* until the receiver has matched,
//!   as MPICH does above the eager threshold. PEDAL compresses only on
//!   this path (paper §IV).

use pedal_dpu::{Bytes, CostModel, Platform, SimClock, SimDuration, SimInstant};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// Default Eager/Rendezvous switchover (MPICH's large-message regime).
pub const DEFAULT_EAGER_THRESHOLD: usize = 256 * 1024;

/// Message envelope travelling between rank threads.
struct Envelope {
    src: usize,
    tag: u64,
    data: Bytes,
    sent_at: SimInstant,
    /// For rendezvous: channel the receiver uses to report the sender's
    /// virtual completion time (the CTS path).
    ack: Option<Sender<SimInstant>>,
}

/// Wire for one rank.
struct Mailbox {
    rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a recv call.
    pending: VecDeque<Envelope>,
}

/// Communicator handle owned by one rank's thread.
pub struct RankCtx {
    pub rank: usize,
    pub size: usize,
    pub platform: Platform,
    pub costs: CostModel,
    /// This rank's virtual clock.
    pub clock: SimClock,
    eager_threshold: usize,
    peers: Vec<Sender<Envelope>>,
    mailbox: Mailbox,
    /// Bytes sent/received (for bandwidth accounting in harnesses).
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

/// Errors from point-to-point operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination/source rank out of range.
    InvalidRank(usize),
    /// All peers hung up (world torn down mid-operation).
    Disconnected,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::Disconnected => write!(f, "communicator disconnected"),
        }
    }
}

impl std::error::Error for MpiError {}

impl RankCtx {
    /// Blocking send of `data` to `dst` with `tag`.
    ///
    /// Returns the sender-side virtual completion time. Small messages use
    /// the eager path (non-synchronizing); large ones rendezvous.
    pub fn send(&mut self, dst: usize, tag: u64, data: Bytes) -> Result<SimInstant, MpiError> {
        if dst >= self.size {
            return Err(MpiError::InvalidRank(dst));
        }
        let sent_at = self.clock.now();
        self.bytes_sent += data.len() as u64;
        if data.len() <= self.eager_threshold {
            // Eager: pay a local copy into the eager buffer and return.
            let copy = self.costs.memcpy(data.len());
            let env = Envelope { src: self.rank, tag, data, sent_at, ack: None };
            self.peers[dst].send(env).map_err(|_| MpiError::Disconnected)?;
            Ok(self.clock.advance(copy))
        } else {
            // Rendezvous: block until the receiver matches and reports our
            // completion time.
            let (ack_tx, ack_rx) = channel();
            let env = Envelope { src: self.rank, tag, data, sent_at, ack: Some(ack_tx) };
            self.peers[dst].send(env).map_err(|_| MpiError::Disconnected)?;
            let done = ack_rx.recv().map_err(|_| MpiError::Disconnected)?;
            Ok(self.clock.merge(done))
        }
    }

    /// Non-blocking send: returns a handle immediately; [`SendHandle::wait`]
    /// blocks until the receiver matches (rendezvous) and merges the
    /// sender's completion time into this rank's clock. Eager-class
    /// messages complete immediately.
    pub fn isend(&mut self, dst: usize, tag: u64, data: Bytes) -> Result<SendHandle, MpiError> {
        if dst >= self.size {
            return Err(MpiError::InvalidRank(dst));
        }
        let sent_at = self.clock.now();
        self.bytes_sent += data.len() as u64;
        if data.len() <= self.eager_threshold {
            let copy = self.costs.memcpy(data.len());
            let env = Envelope { src: self.rank, tag, data, sent_at, ack: None };
            self.peers[dst].send(env).map_err(|_| MpiError::Disconnected)?;
            let done = self.clock.advance(copy);
            Ok(SendHandle { ack: None, done: Some(done) })
        } else {
            let (ack_tx, ack_rx) = channel();
            let env = Envelope { src: self.rank, tag, data, sent_at, ack: Some(ack_tx) };
            self.peers[dst].send(env).map_err(|_| MpiError::Disconnected)?;
            Ok(SendHandle { ack: Some(ack_rx), done: None })
        }
    }

    /// Blocking receive from `src` with `tag`. Returns the payload and the
    /// receiver-side virtual completion time.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<(Bytes, SimInstant), MpiError> {
        if src >= self.size {
            return Err(MpiError::InvalidRank(src));
        }
        let posted_at = self.clock.now();
        let env = self.match_envelope(src, tag)?;
        self.bytes_received += env.data.len() as u64;
        let size = env.data.len();
        let wire = self.costs.network_transfer(size);
        let latency = self.costs.network.latency;
        let done = match env.ack {
            None => {
                // Eager: the message has been in flight since sent_at.
                let arrive = env.sent_at + wire;
                let done = arrive.max(posted_at);
                self.clock.merge(done)
            }
            Some(ack) => {
                // Rendezvous: RTS + CTS handshake, then the bulk transfer.
                let start = env.sent_at.max(posted_at) + latency + latency;
                let sender_done = start + wire.saturating_sub(latency);
                let done = start + wire;
                let _ = ack.send(sender_done);
                self.clock.merge(done)
            }
        };
        Ok((env.data, done))
    }

    /// Pull the next matching envelope, buffering out-of-order arrivals.
    fn match_envelope(&mut self, src: usize, tag: u64) -> Result<Envelope, MpiError> {
        if let Some(pos) = self.mailbox.pending.iter().position(|e| e.src == src && e.tag == tag) {
            return Ok(self.mailbox.pending.remove(pos).unwrap());
        }
        loop {
            let env = self.mailbox.rx.recv().map_err(|_| MpiError::Disconnected)?;
            if env.src == src && env.tag == tag {
                return Ok(env);
            }
            self.mailbox.pending.push_back(env);
        }
    }

    /// Advance this rank's clock by a local compute duration.
    pub fn compute(&self, d: SimDuration) -> SimInstant {
        self.clock.advance(d)
    }

    /// Current virtual time at this rank.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// The eager/rendezvous switchover in force.
    pub fn eager_threshold(&self) -> usize {
        self.eager_threshold
    }
}

/// Handle to an in-flight [`RankCtx::isend`].
pub struct SendHandle {
    ack: Option<Receiver<SimInstant>>,
    done: Option<SimInstant>,
}

impl SendHandle {
    /// Complete the send, merging the completion time into `ctx`'s clock.
    pub fn wait(self, ctx: &RankCtx) -> Result<SimInstant, MpiError> {
        match (self.ack, self.done) {
            (None, Some(done)) => Ok(done),
            (Some(rx), _) => {
                let done = rx.recv().map_err(|_| MpiError::Disconnected)?;
                Ok(ctx.clock.merge(done))
            }
            (None, None) => unreachable!("handle without ack or completion"),
        }
    }

    /// Has the send already completed locally (eager path)?
    pub fn is_complete(&self) -> bool {
        self.done.is_some()
    }
}

/// World configuration.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    pub size: usize,
    pub platform: Platform,
    pub eager_threshold: usize,
}

impl WorldConfig {
    pub fn new(size: usize, platform: Platform) -> Self {
        Self { size, platform, eager_threshold: DEFAULT_EAGER_THRESHOLD }
    }

    pub fn with_eager_threshold(mut self, t: usize) -> Self {
        self.eager_threshold = t;
        self
    }
}

/// Spawn `cfg.size` rank threads, run `body` on each, and collect the
/// results in rank order. Panics in a rank propagate.
pub fn run_world<T, F>(cfg: WorldConfig, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    assert!(cfg.size >= 1, "world needs at least one rank");
    let costs = CostModel::for_platform(cfg.platform);
    let mut senders = Vec::with_capacity(cfg.size);
    let mut receivers = Vec::with_capacity(cfg.size);
    for _ in 0..cfg.size {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let body = &body;

    let mut out: Vec<Option<T>> = (0..cfg.size).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                let senders = senders.clone();
                s.spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        size: cfg.size,
                        platform: cfg.platform,
                        costs,
                        clock: SimClock::new(),
                        eager_threshold: cfg.eager_threshold,
                        peers: senders.as_ref().clone(),
                        mailbox: Mailbox { rx, pending: VecDeque::new() },
                        bytes_sent: 0,
                        bytes_received: 0,
                    };
                    body(&mut ctx)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    out.into_iter().map(|t| t.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(n: usize) -> WorldConfig {
        WorldConfig::new(n, Platform::BlueField2)
    }

    #[test]
    fn eager_pingpong_delivers_payload() {
        let results = run_world(world(2), |ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 7, Bytes::from_static(b"ping")).unwrap();
                let (msg, _) = ctx.recv(1, 8).unwrap();
                msg
            } else {
                let (msg, _) = ctx.recv(0, 7).unwrap();
                assert_eq!(&msg[..], b"ping");
                ctx.send(0, 8, Bytes::from_static(b"pong")).unwrap();
                msg
            }
        });
        assert_eq!(&results[0][..], b"pong");
    }

    #[test]
    fn rendezvous_used_above_threshold() {
        let big = Bytes::from(vec![3u8; DEFAULT_EAGER_THRESHOLD + 1]);
        let results = run_world(world(2), move |ctx| {
            if ctx.rank == 0 {
                let done = ctx.send(1, 1, big.clone()).unwrap();
                done.0
            } else {
                let (msg, done) = ctx.recv(0, 1).unwrap();
                assert_eq!(msg.len(), DEFAULT_EAGER_THRESHOLD + 1);
                done.0
            }
        });
        // Receiver completes after (or with) the sender.
        assert!(results[1] >= results[0]);
        // Both clocks advanced beyond the raw handshake latency.
        assert!(results[1] > 0);
    }

    #[test]
    fn virtual_latency_matches_network_model() {
        let n = 8 * 1024 * 1024usize;
        let payload = Bytes::from(vec![9u8; n]);
        let results = run_world(world(2), move |ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 1, payload.clone()).unwrap();
                0
            } else {
                let (_, done) = ctx.recv(0, 1).unwrap();
                done.0
            }
        });
        let costs = CostModel::for_platform(Platform::BlueField2);
        let expected =
            (costs.network.latency + costs.network.latency + costs.network_transfer(n)).as_nanos();
        assert_eq!(results[1], expected, "deterministic rendezvous timing");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            run_world(world(4), |ctx| {
                let payload = Bytes::from(vec![ctx.rank as u8; 2_000_000]);
                if ctx.rank == 0 {
                    let mut last = 0;
                    for src in 1..ctx.size {
                        let (_, t) = ctx.recv(src, 5).unwrap();
                        last = t.0;
                    }
                    last
                } else {
                    ctx.send(0, 5, payload).unwrap();
                    0
                }
            })
        };
        assert_eq!(run(), run(), "virtual times must be reproducible");
    }

    #[test]
    fn out_of_order_tags_buffered() {
        let results = run_world(world(2), |ctx| {
            if ctx.rank == 0 {
                ctx.send(1, 100, Bytes::from_static(b"first-sent")).unwrap();
                ctx.send(1, 200, Bytes::from_static(b"second-sent")).unwrap();
                Bytes::new()
            } else {
                // Receive in the opposite order.
                let (b, _) = ctx.recv(0, 200).unwrap();
                let (a, _) = ctx.recv(0, 100).unwrap();
                assert_eq!(&a[..], b"first-sent");
                assert_eq!(&b[..], b"second-sent");
                a
            }
        });
        assert_eq!(&results[1][..], b"first-sent");
    }

    #[test]
    fn invalid_rank_rejected() {
        run_world(world(2), |ctx| {
            if ctx.rank == 0 {
                assert_eq!(ctx.send(5, 0, Bytes::new()).unwrap_err(), MpiError::InvalidRank(5));
                assert!(matches!(ctx.recv(9, 0), Err(MpiError::InvalidRank(9))));
            }
        });
    }

    #[test]
    fn bf3_network_is_faster() {
        let n = 16 * 1024 * 1024usize;
        let time_on = |p: Platform| {
            let payload = Bytes::from(vec![1u8; n]);
            let r = run_world(WorldConfig::new(2, p), move |ctx| {
                if ctx.rank == 0 {
                    ctx.send(1, 1, payload.clone()).unwrap();
                    0
                } else {
                    ctx.recv(0, 1).unwrap().1 .0
                }
            });
            r[1]
        };
        let t2 = time_on(Platform::BlueField2);
        let t3 = time_on(Platform::BlueField3);
        assert!(t3 < t2, "BF3 (400 Gb/s) must beat BF2 (200 Gb/s): {t3} vs {t2}");
    }

    #[test]
    fn compute_advances_clock() {
        run_world(world(1), |ctx| {
            let before = ctx.now();
            ctx.compute(SimDuration::from_millis(5));
            assert_eq!(ctx.now().elapsed_since(before), SimDuration::from_millis(5));
        });
    }
}

#[cfg(test)]
mod isend_tests {
    use super::*;

    #[test]
    fn windowed_isends_complete() {
        let results = run_world(WorldConfig::new(2, Platform::BlueField2), |ctx| {
            let window = 8usize;
            let msg = Bytes::from(vec![7u8; 1_000_000]);
            if ctx.rank == 0 {
                let mut handles = Vec::new();
                for w in 0..window as u64 {
                    handles.push(ctx.isend(1, w, msg.clone()).unwrap());
                }
                let mut last = SimInstant::EPOCH;
                for h in handles {
                    last = h.wait(ctx).unwrap();
                }
                // Final ack round trip.
                let (_, done) = ctx.recv(1, 999).unwrap();
                assert!(done >= last);
                done.0
            } else {
                for w in 0..window as u64 {
                    let (m, _) = ctx.recv(0, w).unwrap();
                    assert_eq!(m.len(), 1_000_000);
                }
                ctx.send(0, 999, Bytes::new()).unwrap();
                0
            }
        });
        assert!(results[0] > 0);
    }

    #[test]
    fn eager_isend_completes_immediately() {
        run_world(WorldConfig::new(2, Platform::BlueField2), |ctx| {
            if ctx.rank == 0 {
                let h = ctx.isend(1, 1, Bytes::from_static(b"small")).unwrap();
                assert!(h.is_complete());
                h.wait(ctx).unwrap();
            } else {
                let (m, _) = ctx.recv(0, 1).unwrap();
                assert_eq!(&m[..], b"small");
            }
        });
    }

    #[test]
    fn out_of_order_waits_do_not_deadlock() {
        run_world(WorldConfig::new(2, Platform::BlueField2), |ctx| {
            let big = Bytes::from(vec![3u8; 2_000_000]);
            if ctx.rank == 0 {
                let h1 = ctx.isend(1, 1, big.clone()).unwrap();
                let h2 = ctx.isend(1, 2, big.clone()).unwrap();
                // Wait in reverse order.
                h2.wait(ctx).unwrap();
                h1.wait(ctx).unwrap();
            } else {
                // Receiver matches tag 2 first.
                let _ = ctx.recv(0, 2).unwrap();
                let _ = ctx.recv(0, 1).unwrap();
            }
        });
    }
}
