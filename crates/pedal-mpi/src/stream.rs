//! Windowed frame streaming over the p2p layer: many ordered messages
//! per logical transfer, with a bounded send window so overlap never
//! buys unbounded in-flight memory.
//!
//! The transport is codec-agnostic — frames are opaque byte payloads
//! (PSF1 frames in the compression pipeline, but nothing here knows
//! that). Each frame travels as one message tagged `tag_base + seq`;
//! the stream ends with an empty sentinel message at the next sequence
//! number. Because rendezvous timing is per-message, a sender that
//! computes (compresses) between [`StreamSender::send_frame`] calls gets
//! compute/wire overlap for free: frame `i` is on the wire while chunk
//! `i+1` is still compressing, and the receiver decodes frame `i`
//! before frame `i+1` lands.

use crate::comm::{MpiError, RankCtx, SendHandle};
use pedal_dpu::{Bytes, SimInstant};
use std::collections::VecDeque;

/// High-bit tag namespace for streamed frames, keeping sequence tags
/// clear of ordinary message tags. Callers multiplexing several streams
/// between the same rank pair should space their bases at least
/// [`STREAM_TAG_STRIDE`] apart.
pub const STREAM_TAG_BASE: u64 = 1 << 48;

/// Sequence-number room reserved per stream under one tag base.
pub const STREAM_TAG_STRIDE: u64 = 1 << 24;

/// Default bound on concurrently in-flight frames per stream.
pub const DEFAULT_WINDOW: usize = 4;

/// Sending half of one framed stream to a fixed destination.
pub struct StreamSender {
    dst: usize,
    tag_base: u64,
    window: usize,
    next_seq: u64,
    inflight: VecDeque<SendHandle>,
    /// Payload bytes handed to the transport so far.
    pub bytes_sent: u64,
}

impl StreamSender {
    /// `window` caps in-flight frames (clamped to at least 1): a full
    /// window blocks [`send_frame`](Self::send_frame) until the oldest
    /// frame completes, which is what bounds sender-side memory.
    pub fn new(dst: usize, tag_base: u64, window: usize) -> Self {
        Self {
            dst,
            tag_base,
            window: window.max(1),
            next_seq: 0,
            inflight: VecDeque::new(),
            bytes_sent: 0,
        }
    }

    /// Ship one non-empty frame (empty frames are reserved for the
    /// end-of-stream sentinel).
    pub fn send_frame(&mut self, ctx: &mut RankCtx, frame: Bytes) -> Result<(), MpiError> {
        assert!(!frame.is_empty(), "empty frames are the stream terminator");
        while self.inflight.len() >= self.window {
            let oldest = self.inflight.pop_front().expect("non-empty window");
            oldest.wait(ctx)?;
        }
        self.bytes_sent += frame.len() as u64;
        let handle = ctx.isend(self.dst, self.tag_base + self.next_seq, frame)?;
        self.next_seq += 1;
        self.inflight.push_back(handle);
        Ok(())
    }

    /// Frames shipped so far (not counting the sentinel).
    pub fn frames_sent(&self) -> u64 {
        self.next_seq
    }

    /// Frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Drain the window and send the end-of-stream sentinel; returns the
    /// sender-side virtual completion time of the whole stream.
    pub fn finish(mut self, ctx: &mut RankCtx) -> Result<SimInstant, MpiError> {
        while let Some(handle) = self.inflight.pop_front() {
            handle.wait(ctx)?;
        }
        ctx.send(self.dst, self.tag_base + self.next_seq, Bytes::new())
    }
}

/// Receiving half of one framed stream from a fixed source.
pub struct StreamReceiver {
    src: usize,
    tag_base: u64,
    next_seq: u64,
    done: bool,
    /// Payload bytes received so far.
    pub bytes_received: u64,
}

impl StreamReceiver {
    pub fn new(src: usize, tag_base: u64) -> Self {
        Self { src, tag_base, next_seq: 0, done: false, bytes_received: 0 }
    }

    /// Receive the next frame in sequence; `None` once the sender's
    /// sentinel arrives. The returned instant is the receiver-side
    /// virtual arrival time of that frame.
    pub fn recv_frame(
        &mut self,
        ctx: &mut RankCtx,
    ) -> Result<Option<(Bytes, SimInstant)>, MpiError> {
        if self.done {
            return Ok(None);
        }
        let (data, at) = ctx.recv(self.src, self.tag_base + self.next_seq)?;
        self.next_seq += 1;
        if data.is_empty() {
            self.done = true;
            return Ok(None);
        }
        self.bytes_received += data.len() as u64;
        Ok(Some((data, at)))
    }

    /// Frames received so far (not counting the sentinel).
    pub fn frames_received(&self) -> u64 {
        if self.done {
            self.next_seq.saturating_sub(1)
        } else {
            self.next_seq
        }
    }

    /// True once the sentinel has been consumed.
    pub fn is_finished(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_world, WorldConfig};
    use pedal_dpu::Platform;

    fn world(n: usize) -> WorldConfig {
        WorldConfig::new(n, Platform::BlueField2)
    }

    #[test]
    fn frames_arrive_in_order_and_terminate() {
        let results = run_world(world(2), |ctx| {
            if ctx.rank == 0 {
                let mut tx = StreamSender::new(1, STREAM_TAG_BASE, 3);
                for i in 0..10u8 {
                    tx.send_frame(ctx, Bytes::from(vec![i; 1000 + i as usize])).unwrap();
                    assert!(tx.in_flight() <= 3);
                }
                assert_eq!(tx.frames_sent(), 10);
                tx.finish(ctx).unwrap();
                Vec::new()
            } else {
                let mut rx = StreamReceiver::new(0, STREAM_TAG_BASE);
                let mut sizes = Vec::new();
                while let Some((frame, _)) = rx.recv_frame(ctx).unwrap() {
                    sizes.push(frame.len());
                }
                assert!(rx.is_finished());
                assert_eq!(rx.frames_received(), 10);
                // Idempotent after the sentinel.
                assert!(rx.recv_frame(ctx).unwrap().is_none());
                sizes
            }
        });
        assert_eq!(results[1], (0..10).map(|i| 1000 + i).collect::<Vec<_>>());
    }

    #[test]
    fn rendezvous_frames_overlap_with_compute() {
        // A sender that "compresses" (computes) between frames should
        // finish earlier than one that does all compute up front: the
        // wire carries frame i while compute i+1 runs.
        let frame_len = 2 * 1024 * 1024usize;
        let frames = 8usize;
        let run = |overlap: bool| {
            let r = run_world(world(2), move |ctx| {
                let per_frame = ctx.costs.network_transfer(frame_len);
                if ctx.rank == 0 {
                    let mut tx = StreamSender::new(1, STREAM_TAG_BASE, 4);
                    if !overlap {
                        for _ in 0..frames {
                            ctx.compute(per_frame);
                        }
                    }
                    for i in 0..frames {
                        if overlap {
                            ctx.compute(per_frame);
                        }
                        tx.send_frame(ctx, Bytes::from(vec![i as u8; frame_len])).unwrap();
                    }
                    tx.finish(ctx).unwrap();
                    0
                } else {
                    let mut rx = StreamReceiver::new(0, STREAM_TAG_BASE);
                    let mut last = SimInstant::EPOCH;
                    while let Some((_, at)) = rx.recv_frame(ctx).unwrap() {
                        last = at;
                    }
                    last.0
                }
            });
            r[1]
        };
        let pipelined = run(true);
        let serial = run(false);
        assert!(
            pipelined < serial,
            "interleaved compute should overlap the wire: {pipelined} vs {serial}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            run_world(world(2), |ctx| {
                if ctx.rank == 0 {
                    let mut tx = StreamSender::new(1, STREAM_TAG_BASE, 2);
                    for i in 0..6u8 {
                        tx.send_frame(ctx, Bytes::from(vec![i; 500_000])).unwrap();
                    }
                    tx.finish(ctx).unwrap().0
                } else {
                    let mut rx = StreamReceiver::new(0, STREAM_TAG_BASE);
                    while rx.recv_frame(ctx).unwrap().is_some() {}
                    ctx.now().0
                }
            })
        };
        assert_eq!(run(), run());
    }
}
