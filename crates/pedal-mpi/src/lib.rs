//! # pedal-mpi
//!
//! A compact MPI-like message-passing runtime used as the communication
//! substrate for the PEDAL co-design. It provides:
//!
//! * rank-per-thread execution ([`run_world`]),
//! * blocking Send/Recv with **Eager** and **Rendezvous** protocols over a
//!   latency/bandwidth network model (BlueField-2: 200 Gb/s, BlueField-3:
//!   400 Gb/s),
//! * collectives: binomial-tree [`bcast`] (the paper's Fig. 11 workload),
//!   [`barrier`], [`gather`], [`reduce`], [`allreduce`],
//! * deterministic per-rank virtual clocks, so every latency figure is
//!   bit-reproducible.
//!
//! Real bytes move between threads; only time is simulated.

pub mod collectives;
pub mod comm;
pub mod stream;

pub use collectives::{allreduce, alltoall, barrier, bcast, gather, reduce, scatter};
pub use comm::{run_world, MpiError, RankCtx, SendHandle, WorldConfig, DEFAULT_EAGER_THRESHOLD};
pub use pedal_dpu::Bytes;
pub use stream::{
    StreamReceiver, StreamSender, DEFAULT_WINDOW, STREAM_TAG_BASE, STREAM_TAG_STRIDE,
};
