//! The policy decision log: one record per message, capturing exactly
//! what the probe saw, what feedback was live, and what the policy chose.
//!
//! Like the fleet's `PlacementLog`, this is both telemetry and a
//! *determinism witness*: the log serializes to canonical JSON and
//! hashes with FNV-1a 64, so two runs that claim to have made "the same
//! decisions" must prove it byte-for-byte. Any nondeterminism smuggled
//! into the decision path — a wall clock, a racing counter, float
//! state — surfaces as a digest mismatch.

use crate::policy::Decision;
use crate::probe::ProbeFeatures;
use crate::PolicySnapshot;
use pedal_obs::{Json, ToJson};

/// One message's probe → snapshot → decision triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRecord {
    /// Trace sequence number (or service job id) of the message.
    pub seq: u64,
    pub tenant: u32,
    /// Probe features (integers only — see `ProbeFeatures`).
    pub len: u64,
    pub entropy_mbits: u32,
    pub match_pct: u32,
    pub stride: u8,
    /// Snapshot fields the decision read.
    pub snapshot_at_ns: u64,
    pub queue_depth: u64,
    pub p99_ns: u64,
    /// The decision itself.
    pub decision: &'static str,
    pub level: u8,
    pub chunk: u32,
    pub reason: &'static str,
}

impl PolicyRecord {
    /// Assemble a record from the decision path's three inputs.
    pub fn of(
        seq: u64,
        tenant: u32,
        f: &ProbeFeatures,
        snap: &PolicySnapshot,
        d: &Decision,
    ) -> Self {
        Self {
            seq,
            tenant,
            len: f.len as u64,
            entropy_mbits: f.entropy_mbits,
            match_pct: f.match_pct,
            stride: f.stride,
            snapshot_at_ns: snap.at.0,
            queue_depth: snap.queue_depth,
            p99_ns: snap.p99_ns,
            decision: match d.design() {
                Some(design) => design.name(),
                None => "store-raw",
            },
            level: d.level,
            chunk: d.chunk,
            reason: d.reason.name(),
        }
    }
}

impl ToJson for PolicyRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::u64(self.seq)),
            ("tenant", Json::u64(self.tenant as u64)),
            ("len", Json::u64(self.len)),
            ("entropy_mbits", Json::u64(self.entropy_mbits as u64)),
            ("match_pct", Json::u64(self.match_pct as u64)),
            ("stride", Json::u64(self.stride as u64)),
            ("snapshot_at_ns", Json::u64(self.snapshot_at_ns)),
            ("queue_depth", Json::u64(self.queue_depth)),
            ("p99_ns", Json::u64(self.p99_ns)),
            ("decision", Json::str(self.decision)),
            ("level", Json::u64(self.level as u64)),
            ("chunk", Json::u64(self.chunk as u64)),
            ("reason", Json::str(self.reason)),
        ])
    }
}

/// The full run's decisions, in decision order.
#[derive(Debug, Clone, Default)]
pub struct PolicyLog {
    pub records: Vec<PolicyRecord>,
}

impl PolicyLog {
    pub fn push(&mut self, record: PolicyRecord) {
        self.records.push(record);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of records whose decision string matches (e.g. "store-raw").
    pub fn count_decision(&self, decision: &str) -> usize {
        self.records.iter().filter(|r| r.decision == decision).count()
    }

    /// Canonical serialized form (the determinism witness).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.to_json().write(&mut out);
        out
    }

    /// FNV-1a 64 over the canonical serialization, as fixed-width hex.
    pub fn digest(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json_string().as_bytes()))
    }
}

impl ToJson for PolicyLog {
    fn to_json(&self) -> Json {
        Json::Arr(self.records.iter().map(|r| r.to_json()).collect())
    }
}

/// FNV-1a 64-bit. Kept local: `pedal-fleet` (which owns the other copy)
/// sits *above* this crate in the dependency graph.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptivePolicy, PolicySnapshot};
    use pedal_dpu::SimInstant;

    fn record() -> PolicyRecord {
        let policy = AdaptivePolicy::default();
        let data = pedal_datasets::DatasetId::LogText.generate_bytes(32 << 10);
        let snap = PolicySnapshot {
            at: SimInstant(5_000),
            queue_depth: 3,
            p99_ns: 80_000,
            engine_available: true,
        };
        let (f, d) = policy.probe_and_decide(&data, &snap);
        PolicyRecord::of(9, 4, &f, &snap, &d)
    }

    #[test]
    fn record_json_is_stable() {
        let mut r = record();
        // Pin the probe-derived fields so the golden string cannot drift
        // with generator tweaks; the *shape* is what this test freezes.
        r.entropy_mbits = 4_321;
        r.match_pct = 37;
        let mut out = String::new();
        r.to_json().write(&mut out);
        assert_eq!(
            out,
            r#"{"seq":9,"tenant":4,"len":32768,"entropy_mbits":4321,"match_pct":37,"stride":0,"snapshot_at_ns":5000,"queue_depth":3,"p99_ns":80000,"decision":"C-Engine_DEFLATE","level":6,"chunk":0,"reason":"offload"}"#,
            "canonical record serialization drifted"
        );
    }

    #[test]
    fn digest_is_a_pure_function_of_the_records() {
        let mut a = PolicyLog::default();
        let mut b = PolicyLog::default();
        a.push(record());
        b.push(record());
        assert_eq!(a.digest(), b.digest());
        b.push(PolicyRecord { seq: 10, ..record() });
        assert_ne!(a.digest(), b.digest());
        assert_eq!(b.len(), 2);
        assert_eq!(b.count_decision("C-Engine_DEFLATE"), 2);
    }

    #[test]
    fn fnv_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
