//! # pedal-policy
//!
//! The online per-message adaptive policy: decide, for every message,
//! whether to compress at all, with which codec, at which placement
//! (SoC vs compression engine), and with what streaming chunk size —
//! using a probe that costs O(sample) plus live feedback that costs a
//! snapshot read.
//!
//! The paper's economics drive the shape: engine offload pays a fixed
//! latency toll (~60 µs class) that only amortizes when the message is
//! big and compressible; incompressible payloads waste the toll *and*
//! the codec cycles; numeric columns compress far better under a typed
//! delta codec than under any byte-oriented LZ. A static (codec,
//! placement) configuration is therefore wrong for part of every mixed
//! workload — CEAZ's adaptive co-design argument (PAPERS.md), applied
//! to the BlueField serving tier.
//!
//! Three modules:
//!
//! - [`probe`] — the sampled compressibility probe ([`ProbeFeatures`]).
//! - [`policy`] — the pure decision function ([`AdaptivePolicy`]).
//! - [`log`] — the pinned decision log ([`PolicyLog`]), a determinism
//!   witness in the same mold as the fleet's placement log.
//!
//! ## Determinism contract
//!
//! [`AdaptivePolicy::decide`] is a pure function of `(ProbeFeatures,
//! PolicySnapshot)`. Probe features are pure in the message bytes;
//! snapshots are built from virtual-time sources read at deterministic
//! points (fleet epoch barriers, the service scheduler's own predicted
//! lane state). Replaying a trace therefore replays the decisions —
//! verified end-to-end by hashing the [`PolicyLog`].

pub mod log;
pub mod policy;
pub mod probe;

pub use crate::log::{PolicyLog, PolicyRecord};
pub use crate::policy::{
    AdaptivePolicy, Decision, PolicyChoice, PolicyConfig, PolicyReason, PolicySnapshot,
};
pub use crate::probe::{probe, ProbeConfig, ProbeFeatures};

#[cfg(test)]
mod tests {
    use super::*;
    use pedal_datasets::DatasetId;
    use pedal_dpu::SimInstant;

    /// The end-to-end determinism property the fleet digest relies on:
    /// replaying (messages, snapshots) replays the log digest exactly.
    #[test]
    fn replayed_decisions_hash_identically() {
        let run = || {
            let policy = AdaptivePolicy::default();
            let mut log = PolicyLog::default();
            for (seq, id) in DatasetId::MIXED.iter().cycle().take(24).enumerate() {
                let data = id.generate_bytes(16 << 10);
                let snap = PolicySnapshot {
                    at: SimInstant(seq as u64 * 1_000),
                    queue_depth: seq as u64 % 5,
                    p99_ns: 10_000 * seq as u64,
                    engine_available: seq % 2 == 0,
                };
                let (f, d) = policy.probe_and_decide(&data, &snap);
                log.push(PolicyRecord::of(seq as u64, 0, &f, &snap, &d));
            }
            log
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_json_string(), b.to_json_string());
        assert_eq!(a.digest(), b.digest());
        // And the log actually exercised more than one decision kind.
        assert!(a.count_decision("store-raw") > 0);
        assert!(a.count_decision("SoC_pco") > 0);
    }
}
