//! The sampled compressibility probe.
//!
//! ZipLine's line-speed selection argument (PAPERS.md) rules out trial
//! compression: deciding whether to compress must cost O(sample), not
//! O(message), or the decision eats the savings. The probe therefore
//! reads only the first [`ProbeConfig::sample_bytes`] of a message and
//! extracts three cheap features:
//!
//! - **Byte entropy** — a 256-bin histogram Shannon estimate, in
//!   milli-bits per byte. Uniform random data sits near 8000; text near
//!   4000–4500. Stored as an integer so every downstream comparison is
//!   exact and replay-deterministic.
//! - **Match density** — the fraction of 4-gram positions whose exact
//!   4 bytes were already seen in the sample (1024-slot direct-mapped
//!   table, verified equality — no false positives from hashing).
//!   This is the LZ-family signal entropy alone misses: a permuted
//!   alphabet has low entropy but no matches, random data has neither.
//! - **Numeric-column sniff** — for strides 4 and 8 (f32/f64), the
//!   fraction of consecutive elements sharing their top (sign+exponent)
//!   byte. Columnar telemetry drifting around an operating point keeps
//!   that byte stable; text and random bytes do not.
//!
//! Every feature is a pure function of the sample bytes, so identical
//! messages always probe identically — the first half of the policy's
//! determinism argument.

/// Probe tuning. All defaults are deliberately conservative: the probe
/// reads 4 KiB regardless of message size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Bytes inspected from the head of the message.
    pub sample_bytes: usize,
    /// Messages at or below this size skip codecs entirely (framing and
    /// per-job overhead dominate any possible savings).
    pub tiny_bytes: usize,
    /// Minimum percentage of consecutive same-top-byte elements for the
    /// numeric sniff to report a stride.
    pub stride_min_pct: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self { sample_bytes: 4096, tiny_bytes: 512, stride_min_pct: 85 }
    }
}

/// What the probe saw. All fields are integers: decisions branch on
/// exact comparisons, never on float state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeFeatures {
    /// Full message length (the only O(message) fact used — it is free).
    pub len: usize,
    /// Bytes actually probed (`min(len, sample_bytes)`).
    pub sampled: usize,
    /// Shannon byte entropy of the sample, milli-bits per byte (0..=8000).
    pub entropy_mbits: u32,
    /// Percent of 4-gram positions with an exact earlier occurrence.
    pub match_pct: u32,
    /// Detected numeric element stride (4 or 8), or 0. Only reported
    /// when the *whole* message length is stride-aligned, so a typed
    /// codec can actually be applied.
    pub stride: u8,
}

/// Probe the head of `data`. O(sample_bytes), never O(len).
pub fn probe(data: &[u8], cfg: &ProbeConfig) -> ProbeFeatures {
    let sampled = data.len().min(cfg.sample_bytes);
    let sample = &data[..sampled];
    ProbeFeatures {
        len: data.len(),
        sampled,
        entropy_mbits: entropy_mbits(sample),
        match_pct: match_pct(sample),
        stride: sniff_stride(sample, data.len(), cfg.stride_min_pct),
    }
}

/// Shannon entropy of the byte histogram, in milli-bits per byte.
fn entropy_mbits(sample: &[u8]) -> u32 {
    if sample.is_empty() {
        return 0;
    }
    let mut counts = [0u32; 256];
    for &b in sample {
        counts[b as usize] += 1;
    }
    let n = sample.len() as f64;
    let mut h = 0.0f64;
    for &c in counts.iter().filter(|&&c| c > 0) {
        let p = c as f64 / n;
        h -= p * p.log2();
    }
    // Clamp against rounding: 8 bits/byte is the hard ceiling.
    (h * 1000.0).round().min(8000.0) as u32
}

/// Percent of 4-gram positions whose exact bytes occurred earlier in the
/// sample. Direct-mapped 1024-slot table keyed by the 4-gram value
/// itself; a hit requires byte equality, so collisions only *miss*
/// matches (undercount), never invent them.
fn match_pct(sample: &[u8]) -> u32 {
    if sample.len() < 8 {
        return 0;
    }
    let mut table = [0u32; 1024];
    let mut seen = [false; 1024];
    let mut matches = 0usize;
    let positions = sample.len() - 3;
    for i in 0..positions {
        let gram = u32::from_le_bytes([sample[i], sample[i + 1], sample[i + 2], sample[i + 3]]);
        // Multiplicative hash spreads low-entropy grams across the table.
        let slot = (gram.wrapping_mul(0x9E37_79B1) >> 22) as usize;
        if seen[slot] && table[slot] == gram {
            matches += 1;
        } else {
            table[slot] = gram;
            seen[slot] = true;
        }
    }
    (matches * 100 / positions) as u32
}

/// Detect a 4- or 8-byte element stride by top-byte stability. Reports a
/// stride only when the full message is stride-aligned (a typed codec
/// must be able to consume it) and the sample holds enough elements for
/// the statistic to mean anything.
fn sniff_stride(sample: &[u8], full_len: usize, min_pct: u32) -> u8 {
    for stride in [4usize, 8] {
        if !full_len.is_multiple_of(stride) {
            continue;
        }
        let elems = sample.len() / stride;
        if elems < 64 {
            continue;
        }
        let top = stride - 1;
        let mut same = 0usize;
        for e in 1..elems {
            if sample[e * stride + top] == sample[(e - 1) * stride + top] {
                same += 1;
            }
        }
        if same * 100 >= (elems - 1) * min_pct as usize {
            return stride as u8;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedal_datasets::DatasetId;

    fn features(id: DatasetId, len: usize) -> ProbeFeatures {
        probe(&id.generate_bytes(len), &ProbeConfig::default())
    }

    #[test]
    fn probe_is_deterministic_and_sample_bounded() {
        let data = DatasetId::LogText.generate_bytes(1 << 20);
        let cfg = ProbeConfig::default();
        assert_eq!(probe(&data, &cfg), probe(&data, &cfg));
        // Only the head matters: perturbing bytes past the sample window
        // cannot change any feature (O(sample), not O(message)).
        let mut tail_flipped = data.clone();
        let n = tail_flipped.len();
        tail_flipped[n - 1] ^= 0xFF;
        assert_eq!(probe(&data, &cfg), probe(&tail_flipped, &cfg));
    }

    #[test]
    fn random_bytes_probe_incompressible() {
        let f = features(DatasetId::RandomBlob, 64 << 10);
        assert!(f.entropy_mbits > 7800, "entropy {} too low for random", f.entropy_mbits);
        assert!(f.match_pct <= 1, "match_pct {} on random data", f.match_pct);
        assert_eq!(f.stride, 0, "stride sniff false-positive on random data");
    }

    #[test]
    fn log_text_probes_compressible() {
        let f = features(DatasetId::LogText, 64 << 10);
        assert!(f.entropy_mbits < 6000, "entropy {} too high for text", f.entropy_mbits);
        assert!(f.match_pct >= 20, "match_pct {} too low for text", f.match_pct);
        assert_eq!(f.stride, 0, "stride sniff false-positive on text");
    }

    #[test]
    fn float_columns_probe_numeric() {
        let f = features(DatasetId::FloatColumn, 64 << 10);
        assert_eq!(f.stride, 4, "stride sniff missed f32 columns");
    }

    #[test]
    fn stride_requires_whole_message_alignment() {
        let data = DatasetId::FloatColumn.generate_bytes((64 << 10) + 2);
        let f = probe(&data, &ProbeConfig::default());
        assert_eq!(f.stride, 0, "unaligned message must not report a stride");
    }

    #[test]
    fn f64_stride_detected_at_eight() {
        // Synthetic f64 column around a fixed operating point.
        let mut data = Vec::new();
        for i in 0..8192usize {
            let v = 40.0f64 + (i as f64 * 0.01).sin();
            data.extend_from_slice(&v.to_le_bytes());
        }
        let f = probe(&data, &ProbeConfig::default());
        assert_eq!(f.stride, 8);
    }

    #[test]
    fn entropy_extremes() {
        let cfg = ProbeConfig::default();
        assert_eq!(probe(&[], &cfg).entropy_mbits, 0);
        assert_eq!(probe(&[7u8; 4096], &cfg).entropy_mbits, 0);
        // All 256 values equally often: exactly 8 bits/byte.
        let uniform: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        assert_eq!(probe(&uniform, &cfg).entropy_mbits, 8000);
    }

    #[test]
    fn tiny_messages_probe_cheaply() {
        let f = probe(b"abc", &ProbeConfig::default());
        assert_eq!(f.len, 3);
        assert_eq!(f.sampled, 3);
        assert_eq!(f.match_pct, 0);
    }
}
