//! The per-message decision function.
//!
//! CEAZ (PAPERS.md) is the template: a hardware-aware closed loop that
//! picks the codec configuration per input instead of globally. Here the
//! loop closes over two inputs and *only* two inputs:
//!
//! 1. the [`ProbeFeatures`] of the message head (pure in the bytes), and
//! 2. a [`PolicySnapshot`] of live feedback, keyed by the virtual
//!    instant it was taken.
//!
//! [`AdaptivePolicy::decide`] is a pure function of that pair — no
//! internal state, no clocks, no randomness — so a replay that feeds the
//! same messages and the same snapshots gets byte-identical decisions,
//! which is what keeps fleet digests stable with the policy enabled.
//!
//! One deliberate narrowing: the PEDAL wire protocol pins each codec's
//! parameters (DEFLATE level, LZ4 block level) so that SoC and engine
//! produce byte-identical payloads. The policy therefore expresses the
//! "effort level" axis through codec choice — LZ4 *is* the fast level,
//! DEFLATE the thorough one — and [`Decision::level`] records the pinned
//! level of whichever codec won, as telemetry rather than a free knob.

use crate::probe::{probe, ProbeConfig, ProbeFeatures};
use pedal::{Datatype, Design};
use pedal_dpu::SimInstant;
use pedal_dpu::{Algorithm, Placement};

/// Thresholds for [`AdaptivePolicy`]. Defaults are tuned on the
/// `pedal-datasets` mixed classes (see the decision-table tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    pub probe: ProbeConfig,
    /// Entropy at or above this (milli-bits/byte) with no match density
    /// and no stride means "store raw" — the codec cannot win.
    pub store_entropy_mbits: u32,
    /// Match density at or below this percent counts as "no matches".
    pub store_match_pct: u32,
    /// Queue depth at or above this treats the engine path as backed up.
    pub queue_high: u64,
    /// Rolling p99 latency at or above this (ns) switches the policy to
    /// its cheap-codec mode. 0 disables the latency trigger.
    pub p99_redline_ns: u64,
    /// Streaming chunk size for messages above `chunk_threshold`.
    pub chunk_bytes: u32,
    /// Messages at or above this many bytes are chunked for streaming.
    pub chunk_threshold: usize,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            probe: ProbeConfig::default(),
            store_entropy_mbits: 7800,
            store_match_pct: 1,
            queue_high: 48,
            p99_redline_ns: 0,
            chunk_bytes: 1 << 20,
            chunk_threshold: 2 << 20,
        }
    }
}

/// Live feedback at one virtual instant. Integrators build this from
/// deterministic sources only: the fleet reads rolling windows at epoch
/// barriers (nodes paused), the service scheduler uses its own predicted
/// lane state — never a wall clock, never a racing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySnapshot {
    /// Virtual instant the snapshot was taken (keys the decision log).
    pub at: SimInstant,
    /// Jobs queued/in-flight ahead of this message on the engine path.
    pub queue_depth: u64,
    /// Rolling p99 latency in ns, if a window was live (0 = no signal).
    pub p99_ns: u64,
    /// Whether this node's engine can compress at all (BF3 cannot).
    pub engine_available: bool,
}

impl PolicySnapshot {
    /// A calm, engine-capable snapshot at the epoch — the identity
    /// element of the feedback axis (probe features alone decide).
    pub fn calm() -> Self {
        Self { at: SimInstant::EPOCH, queue_depth: 0, p99_ns: 0, engine_available: true }
    }
}

/// What the policy chose to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Frame as uncompressed passthrough; never touch a codec.
    StoreRaw,
    /// Typed pco on the SoC (numeric columns).
    Pco,
    /// LZ4 on the SoC (the fast lever under pressure).
    Lz4,
    /// DEFLATE, placed per [`Decision::placement`].
    Deflate,
}

impl PolicyChoice {
    pub fn name(self) -> &'static str {
        match self {
            PolicyChoice::StoreRaw => "store-raw",
            PolicyChoice::Pco => "pco",
            PolicyChoice::Lz4 => "lz4",
            PolicyChoice::Deflate => "deflate",
        }
    }
}

/// Why the policy chose what it chose (one stable tag per table row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyReason {
    /// Message too small to amortize framing + codec overhead.
    Tiny,
    /// Numeric stride detected: typed pco beats byte codecs.
    NumericColumn,
    /// High entropy, no matches: nothing for any codec to find.
    Incompressible,
    /// Compressible and the engine path is calm: offload.
    Offload,
    /// Compressible but the engine is busy/absent: compress on the SoC.
    SocCompress,
    /// Live p99 over the redline: trade ratio for cycles.
    Pressure,
}

impl PolicyReason {
    pub fn name(self) -> &'static str {
        match self {
            PolicyReason::Tiny => "tiny",
            PolicyReason::NumericColumn => "numeric-column",
            PolicyReason::Incompressible => "incompressible",
            PolicyReason::Offload => "offload",
            PolicyReason::SocCompress => "soc-compress",
            PolicyReason::Pressure => "pressure",
        }
    }
}

/// One message's full decision: codec, placement, datatype, streaming
/// chunk, and the table row that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    pub choice: PolicyChoice,
    pub placement: Placement,
    /// The wire-pinned parameter level of the chosen codec (DEFLATE 6,
    /// LZ4 block 1, pco/store 0). Telemetry, not a free knob — see the
    /// module docs.
    pub level: u8,
    /// Streaming chunk size in bytes; 0 = send the message whole.
    pub chunk: u32,
    /// Datatype to submit with (typed pco upgrades Byte → Float32/64).
    pub datatype: Datatype,
    pub reason: PolicyReason,
}

impl Decision {
    /// The design to submit, or `None` for store-raw.
    pub fn design(&self) -> Option<Design> {
        let algorithm = match self.choice {
            PolicyChoice::StoreRaw => return None,
            PolicyChoice::Pco => Algorithm::Pco,
            PolicyChoice::Lz4 => Algorithm::Lz4,
            PolicyChoice::Deflate => Algorithm::Deflate,
        };
        Some(Design { algorithm, placement: self.placement })
    }

    fn store(reason: PolicyReason) -> Self {
        Self {
            choice: PolicyChoice::StoreRaw,
            placement: Placement::Soc,
            level: 0,
            chunk: 0,
            datatype: Datatype::Byte,
            reason,
        }
    }
}

/// The policy engine. Stateless: owning a value is just owning the
/// thresholds.
#[derive(Debug, Clone, Default)]
pub struct AdaptivePolicy {
    cfg: PolicyConfig,
}

impl AdaptivePolicy {
    pub fn new(cfg: PolicyConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Probe `data` and decide. Convenience over [`Self::decide`].
    pub fn probe_and_decide(
        &self,
        data: &[u8],
        snap: &PolicySnapshot,
    ) -> (ProbeFeatures, Decision) {
        let f = probe(data, &self.cfg.probe);
        let d = self.decide(&f, snap);
        (f, d)
    }

    /// The decision table. Pure in `(features, snapshot)`; row order is
    /// part of the contract (documented in DESIGN.md §2.10):
    ///
    /// | # | condition                                   | decision        |
    /// |---|---------------------------------------------|-----------------|
    /// | 1 | `len <= tiny_bytes`                         | store-raw       |
    /// | 2 | numeric stride detected                     | pco @ SoC       |
    /// | 3 | entropy high and no matches                 | store-raw       |
    /// | 4 | p99 over redline                            | LZ4 @ SoC       |
    /// | 5 | engine available and queue calm             | DEFLATE @ CE    |
    /// | 6 | otherwise                                   | DEFLATE @ SoC   |
    ///
    /// Rows 5–6 chunk messages above `chunk_threshold` for streaming.
    pub fn decide(&self, f: &ProbeFeatures, snap: &PolicySnapshot) -> Decision {
        let cfg = &self.cfg;
        // Row 1: tiny.
        if f.len <= cfg.probe.tiny_bytes {
            return Decision::store(PolicyReason::Tiny);
        }
        // Row 2: numeric columns — typed pco on the SoC (no engine
        // supports pco; the sniff already guaranteed alignment).
        if f.stride == 4 || f.stride == 8 {
            return Decision {
                choice: PolicyChoice::Pco,
                placement: Placement::Soc,
                level: 0,
                chunk: 0,
                datatype: if f.stride == 4 { Datatype::Float32 } else { Datatype::Float64 },
                reason: PolicyReason::NumericColumn,
            };
        }
        // Row 3: incompressible — don't burn cycles to learn what the
        // probe already knows; the frame layer would passthrough anyway.
        if f.entropy_mbits >= cfg.store_entropy_mbits && f.match_pct <= cfg.store_match_pct {
            return Decision::store(PolicyReason::Incompressible);
        }
        let chunk = if f.len >= cfg.chunk_threshold { cfg.chunk_bytes.max(1) } else { 0 };
        // Row 4: live pressure — trade ratio for cycles until the rolling
        // window recovers.
        if cfg.p99_redline_ns > 0 && snap.p99_ns >= cfg.p99_redline_ns {
            return Decision {
                choice: PolicyChoice::Lz4,
                placement: Placement::Soc,
                level: 1,
                chunk,
                datatype: Datatype::Byte,
                reason: PolicyReason::Pressure,
            };
        }
        // Rows 5/6: compressible — offload when the engine path is calm,
        // otherwise spend SoC cycles.
        let engine_calm = snap.engine_available && snap.queue_depth < cfg.queue_high;
        Decision {
            choice: PolicyChoice::Deflate,
            placement: if engine_calm { Placement::CEngine } else { Placement::Soc },
            level: 6,
            chunk,
            datatype: Datatype::Byte,
            reason: if engine_calm { PolicyReason::Offload } else { PolicyReason::SocCompress },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedal_datasets::DatasetId;

    fn decide(id: DatasetId, len: usize, snap: &PolicySnapshot) -> Decision {
        AdaptivePolicy::default().probe_and_decide(&id.generate_bytes(len), snap).1
    }

    #[test]
    fn decision_table_on_mixed_classes() {
        let calm = PolicySnapshot::calm();
        // Logs: compressible → offload to the calm engine.
        let d = decide(DatasetId::LogText, 32 << 10, &calm);
        assert_eq!(d.reason, PolicyReason::Offload);
        assert_eq!(d.design(), Some(Design::CE_DEFLATE));
        // Random: store raw.
        let d = decide(DatasetId::RandomBlob, 32 << 10, &calm);
        assert_eq!(d.reason, PolicyReason::Incompressible);
        assert_eq!(d.design(), None);
        // Float columns: typed pco on the SoC.
        let d = decide(DatasetId::FloatColumn, 32 << 10, &calm);
        assert_eq!(d.reason, PolicyReason::NumericColumn);
        assert_eq!(d.design(), Some(Design::SOC_PCO));
        assert_eq!(d.datatype, Datatype::Float32);
    }

    #[test]
    fn tiny_messages_always_store() {
        let d = decide(DatasetId::LogText, 256, &PolicySnapshot::calm());
        assert_eq!(d.reason, PolicyReason::Tiny);
        assert_eq!(d.design(), None);
    }

    #[test]
    fn busy_engine_moves_deflate_to_soc() {
        let busy = PolicySnapshot { queue_depth: 1_000, ..PolicySnapshot::calm() };
        let d = decide(DatasetId::LogText, 32 << 10, &busy);
        assert_eq!(d.reason, PolicyReason::SocCompress);
        assert_eq!(d.design(), Some(Design::SOC_DEFLATE));
        // No engine at all (BF3): same fallback, even when calm.
        let bf3 = PolicySnapshot { engine_available: false, ..PolicySnapshot::calm() };
        let d = decide(DatasetId::LogText, 32 << 10, &bf3);
        assert_eq!(d.design(), Some(Design::SOC_DEFLATE));
    }

    #[test]
    fn p99_redline_switches_to_lz4() {
        let policy = AdaptivePolicy::new(PolicyConfig {
            p99_redline_ns: 1_000_000,
            ..PolicyConfig::default()
        });
        let data = DatasetId::LogText.generate_bytes(32 << 10);
        let hot = PolicySnapshot { p99_ns: 2_000_000, ..PolicySnapshot::calm() };
        let d = policy.probe_and_decide(&data, &hot).1;
        assert_eq!(d.reason, PolicyReason::Pressure);
        assert_eq!(d.design(), Some(Design::SOC_LZ4));
        // Under the redline the same message offloads.
        let calm = PolicySnapshot { p99_ns: 500_000, ..PolicySnapshot::calm() };
        assert_eq!(policy.probe_and_decide(&data, &calm).1.reason, PolicyReason::Offload);
        // Pressure never overrides the store rows: random still stores.
        let blob = DatasetId::RandomBlob.generate_bytes(32 << 10);
        assert_eq!(policy.probe_and_decide(&blob, &hot).1.design(), None);
    }

    #[test]
    fn large_messages_get_a_streaming_chunk() {
        let data = DatasetId::LogText.generate_bytes(3 << 20);
        let d = AdaptivePolicy::default().probe_and_decide(&data, &PolicySnapshot::calm()).1;
        assert_eq!(d.chunk, 1 << 20);
        let small = DatasetId::LogText.generate_bytes(64 << 10);
        let d = AdaptivePolicy::default().probe_and_decide(&small, &PolicySnapshot::calm()).1;
        assert_eq!(d.chunk, 0);
    }

    #[test]
    fn decisions_are_pure_in_probe_and_snapshot() {
        // Same (features, snapshot) → same decision, across fresh policy
        // values and repeated calls — there is no hidden state to drift.
        let data = DatasetId::LogText.generate_bytes(48 << 10);
        let snap = PolicySnapshot {
            at: SimInstant(123_456),
            queue_depth: 7,
            p99_ns: 90_000,
            engine_available: true,
        };
        let a = AdaptivePolicy::default().probe_and_decide(&data, &snap);
        for _ in 0..8 {
            assert_eq!(AdaptivePolicy::default().probe_and_decide(&data, &snap), a);
        }
    }
}
