//! Sampling-based predictor selection — SZ3's "modular framework for
//! composing prediction-based compressors" picks the best predictor per
//! input; this module reproduces that stage.
//!
//! Each candidate predictor is evaluated on a sample of the grid using the
//! *original* values as anchors (the standard SZ3 approximation: during
//! selection, reconstruction error is assumed negligible relative to
//! prediction error). Candidates are ranked by *estimated bits per
//! symbol* — `log2(|err|/eb + 1)` averaged over the sample — which is what
//! the entropy stage actually pays; a plain mean error would let a handful
//! of coarse-level interpolation outliers mask fine-level wins.

use crate::field::{Field, Float};
use crate::interp_nd::interp_plan_nd;
use crate::predictor::{interp_cubic, interp_linear, lorenzo_predict, PredictorKind};

/// Maximum number of sampled points per candidate.
const SAMPLE_BUDGET: usize = 4096;

/// Estimate mean coded bits per symbol for one predictor on a sample.
pub fn estimate<T: Float>(field: &Field<T>, predictor: PredictorKind, eb: f64) -> f64 {
    let dims = field.dims;
    let n = dims.len();
    if n < 4 {
        return f64::INFINITY;
    }
    let vals: Vec<f64> = field.data.iter().map(|v| v.to_f64()).collect();
    let mut err = 0.0f64;
    let mut count = 0usize;
    // Quantization-noise floor: predictions read *reconstructed* values in
    // the real pipeline, each off by up to eb. The Lorenzo stencil sums
    // 2^rank - 1 of them; interpolation kernels average ~1 of them. The
    // original-anchor estimate must account for that or it flatters
    // Lorenzo on smooth data.
    let noise = match predictor {
        PredictorKind::Lorenzo => ((1usize << dims.rank()) - 1) as f64 * eb,
        PredictorKind::Interp => eb,
        PredictorKind::InterpCubic => 1.25 * eb,
    };
    match predictor {
        PredictorKind::Lorenzo => {
            let step = (n / SAMPLE_BUDGET).max(1);
            let mut i = 1usize;
            while i < n {
                // Reconstruct coordinates from the linear index.
                let x = i % dims.nx;
                let y = (i / dims.nx) % dims.ny;
                let z = i / (dims.nx * dims.ny);
                let pred = lorenzo_predict(&vals, dims.nx, dims.ny, x, y, z);
                let v = vals[i];
                if v.is_finite() && pred.is_finite() {
                    err += (((v - pred).abs() + noise) / eb + 1.0).log2();
                    count += 1;
                }
                i += step;
            }
        }
        PredictorKind::Interp | PredictorKind::InterpCubic => {
            let plan = interp_plan_nd(dims);
            let step = (plan.len() / SAMPLE_BUDGET).max(1);
            let cubic = predictor == PredictorKind::InterpCubic;
            for p in plan.iter().step_by(step) {
                let pred = if cubic { interp_cubic(&vals, *p) } else { interp_linear(&vals, *p) };
                let v = vals[p.pos];
                if v.is_finite() && pred.is_finite() {
                    err += (((v - pred).abs() + noise) / eb + 1.0).log2();
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        err / count as f64
    }
}

/// Pick the predictor with the smallest estimated bit cost at bound `eb`.
pub fn select_predictor<T: Float>(field: &Field<T>, eb: f64) -> PredictorKind {
    let candidates = [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic];
    let mut best = (f64::INFINITY, PredictorKind::Interp);
    for cand in candidates {
        let e = estimate(field, cand, eb);
        // Strict improvement required, so earlier (cheaper) candidates win
        // ties.
        if e < best.0 {
            best = (e, cand);
        }
    }
    best.1
}

/// Compress with automatic predictor selection; returns the stream and the
/// chosen predictor (also recorded in the stream header).
pub fn compress_auto<T: Float>(
    field: &Field<T>,
    cfg: &crate::Sz3Config,
) -> (Vec<u8>, PredictorKind) {
    let predictor = select_predictor(field, cfg.error_bound.max(f64::MIN_POSITIVE));
    let cfg = crate::Sz3Config { predictor, ..*cfg };
    (crate::compress(field, &cfg), predictor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dims;
    use crate::Sz3Config;

    #[test]
    fn smooth_curves_prefer_interpolation() {
        let f =
            Field::<f64>::from_fn(Dims::d1(20_000), |x, _, _| ((x as f64) * 0.002).sin() * 50.0);
        let picked = select_predictor(&f, 1e-4);
        assert!(
            matches!(picked, PredictorKind::Interp | PredictorKind::InterpCubic),
            "smooth data picked {picked:?}"
        );
    }

    #[test]
    fn cubic_wins_on_polynomial_data() {
        let f = Field::<f64>::from_fn(Dims::d1(8_192), |x, _, _| {
            let t = x as f64 / 100.0;
            t * t * t - 4.0 * t * t + t
        });
        assert_eq!(select_predictor(&f, 1e-4), PredictorKind::InterpCubic);
    }

    #[test]
    fn staircase_prefers_lorenzo() {
        // Piecewise-constant plateaus: the previous value predicts exactly
        // except at jumps, while interpolation straddles jumps at every
        // level. Lorenzo must win decisively.
        let mut x = 42u64;
        let mut level = 0.0f64;
        let f = Field::<f64>::from_fn(Dims::d1(30_000), |i, _, _| {
            if i % 97 == 0 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                level = (x % 1000) as f64;
            }
            level
        });
        assert_eq!(select_predictor(&f, 1e-4), PredictorKind::Lorenzo);
    }

    #[test]
    fn auto_roundtrips_and_beats_or_matches_fixed_choice() {
        let f = Field::<f32>::from_fn(Dims::d2(120, 90), |x, y, _| {
            ((x as f32) * 0.05).sin() + ((y as f32) * 0.08).cos()
        });
        let cfg = Sz3Config::with_error_bound(1e-4);
        let (auto_stream, picked) = compress_auto(&f, &cfg);
        let recon: Field<f32> = crate::decompress(&auto_stream).unwrap();
        assert!(f.max_abs_diff(&recon) <= 1e-4);
        // The auto choice must not be (much) worse than every fixed choice.
        let best_fixed =
            [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic]
                .iter()
                .map(|&p| crate::compress(&f, &Sz3Config { predictor: p, ..cfg }).len())
                .min()
                .unwrap();
        assert!(
            auto_stream.len() <= best_fixed + best_fixed / 10,
            "auto ({picked:?}) produced {} vs best fixed {best_fixed}",
            auto_stream.len()
        );
    }

    #[test]
    fn tiny_fields_do_not_panic() {
        for n in [1usize, 2, 3, 4] {
            let f = Field::<f32>::from_fn(Dims::d1(n), |x, _, _| x as f32);
            let _ = select_predictor(&f, 0.1);
            let (s, _) = compress_auto(&f, &Sz3Config::with_error_bound(0.1));
            let r: Field<f32> = crate::decompress(&s).unwrap();
            assert!(f.max_abs_diff(&r) <= 0.1);
        }
    }
}
