//! Multi-level interpolation over 2-D and 3-D grids — SZ3's flagship
//! predictor generalized beyond rank 1.
//!
//! The refinement scheme is SZ3's dimension-sequenced binary descent.
//! Points on the coarse lattice `L_s` (all coordinates multiples of `s`)
//! are known; one refinement halves the stride:
//!
//! 1. **x-pass**: predict points with `x ≡ s/2 (mod s)` and `y, z`
//!    multiples of `s`, interpolating along x between lattice neighbours;
//! 2. **y-pass**: predict points with `y ≡ s/2 (mod s)`, `x` a multiple of
//!    `s/2`, `z` a multiple of `s`, interpolating along y;
//! 3. **z-pass**: predict `z ≡ s/2 (mod s)` with `x, y` multiples of `s/2`.
//!
//! After the three passes every point of `L_{s/2}` is known. The plan is a
//! deterministic visit order shared by compressor and decompressor, so
//! prediction always reads already-reconstructed values.

use crate::field::Dims;
use crate::predictor::InterpPoint;

/// Generate the N-D interpolation plan for `dims`. The seed point is linear
/// index 0 (quantized against a 0.0 prediction by the caller); every other
/// grid point appears exactly once, with per-point anchor indexes expressed
/// as linear offsets into the row-major array.
pub fn interp_plan_nd(dims: Dims) -> Vec<InterpPoint> {
    let n = dims.len();
    let mut plan = Vec::with_capacity(n.saturating_sub(1));
    if n <= 1 {
        return plan;
    }
    let max_dim = dims.nx.max(dims.ny).max(dims.nz);
    let mut stride = 1usize;
    while stride < max_dim {
        stride <<= 1;
    }
    // Axis extents and linear-index strides (row-major x-fastest).
    let extents = [dims.nx, dims.ny, dims.nz];
    let lin = [1usize, dims.nx, dims.nx * dims.ny];

    while stride >= 2 {
        let half = stride / 2;
        // Pass over axes in x, y, z order.
        for axis in 0..3 {
            if extents[axis] <= 1 {
                continue;
            }
            // Coordinates along `axis` at odd multiples of `half`; the
            // earlier axes of this level are already refined to `half`,
            // later axes remain on the full `stride` lattice.
            let step_of = |a: usize| -> usize {
                if a < axis {
                    half
                } else {
                    stride
                }
            };
            let mut coord = [0usize; 3];
            // Iterate the lattice of the two non-target axes.
            let (a1, a2) = match axis {
                0 => (1, 2),
                1 => (0, 2),
                _ => (0, 1),
            };
            coord[a1] = 0;
            while coord[a1] < extents[a1] {
                coord[a2] = 0;
                while coord[a2] < extents[a2] {
                    // Walk the target axis at odd multiples of `half`.
                    let mut t = half;
                    while t < extents[axis] {
                        coord[axis] = t;
                        let at = |c: &[usize; 3]| c[0] * lin[0] + c[1] * lin[1] + c[2] * lin[2];
                        let pos = at(&coord);
                        let mut left_c = coord;
                        left_c[axis] = t - half;
                        let left = at(&left_c);
                        let right = if t + half < extents[axis] {
                            let mut c = coord;
                            c[axis] = t + half;
                            Some(at(&c))
                        } else {
                            None
                        };
                        let far_left = if t >= 3 * half {
                            let mut c = coord;
                            c[axis] = t - 3 * half;
                            Some(at(&c))
                        } else {
                            None
                        };
                        let far_right = if t + 3 * half < extents[axis] {
                            let mut c = coord;
                            c[axis] = t + 3 * half;
                            Some(at(&c))
                        } else {
                            None
                        };
                        plan.push(InterpPoint { pos, left, right, far_left, far_right });
                        t += stride;
                    }
                    coord[a2] += step_of(a2);
                }
                coord[a1] += step_of(a1);
            }
        }
        stride = half;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{interp_cubic, interp_linear};

    fn check_plan(dims: Dims) {
        let plan = interp_plan_nd(dims);
        let n = dims.len();
        let mut seen = vec![false; n];
        seen[0] = true;
        for p in &plan {
            assert!(p.pos < n, "{dims:?}: pos out of range");
            assert!(!seen[p.pos], "{dims:?}: {} visited twice", p.pos);
            assert!(seen[p.left], "{dims:?}: left anchor {} of {} not ready", p.left, p.pos);
            if let Some(r) = p.right {
                assert!(seen[r], "{dims:?}: right anchor {r} of {} not ready", p.pos);
            }
            if let Some(fl) = p.far_left {
                assert!(seen[fl], "{dims:?}: far-left anchor not ready");
            }
            if let Some(fr) = p.far_right {
                assert!(seen[fr], "{dims:?}: far-right anchor not ready");
            }
            seen[p.pos] = true;
        }
        assert!(seen.iter().all(|&s| s), "{dims:?}: unvisited points");
    }

    #[test]
    fn plan_covers_2d_grids() {
        for (nx, ny) in
            [(2usize, 2usize), (3, 3), (4, 4), (5, 7), (16, 16), (17, 13), (1, 9), (64, 3)]
        {
            check_plan(Dims::d2(nx, ny));
        }
    }

    #[test]
    fn plan_covers_3d_grids() {
        for (nx, ny, nz) in
            [(2usize, 2usize, 2usize), (3, 4, 5), (8, 8, 8), (9, 5, 3), (1, 1, 7), (6, 1, 6)]
        {
            check_plan(Dims::d3(nx, ny, nz));
        }
    }

    #[test]
    fn plan_matches_1d_for_flat_dims() {
        // On a 1-D shape, the N-D plan must visit the same points as the
        // 1-D plan (possibly identical order).
        let n = 37;
        let nd = interp_plan_nd(Dims::d1(n));
        let d1 = crate::predictor::interp_plan(n);
        let mut nd_pos: Vec<usize> = nd.iter().map(|p| p.pos).collect();
        let mut d1_pos: Vec<usize> = d1.iter().map(|p| p.pos).collect();
        nd_pos.sort_unstable();
        d1_pos.sort_unstable();
        assert_eq!(nd_pos, d1_pos);
    }

    #[test]
    fn linear_kernel_exact_on_planes() {
        // f(x,y) = 3x - 2y + 7 is linear along every axis: axis-wise linear
        // interpolation reproduces it exactly.
        let dims = Dims::d2(33, 17);
        let mut recon = vec![0.0f64; dims.len()];
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                recon[dims.idx(x, y, 0)] = 3.0 * x as f64 - 2.0 * y as f64 + 7.0;
            }
        }
        for p in interp_plan_nd(dims) {
            if p.right.is_some() {
                let pred = interp_linear(&recon, p);
                assert!(
                    (pred - recon[p.pos]).abs() < 1e-9,
                    "pos {}: {pred} vs {}",
                    p.pos,
                    recon[p.pos]
                );
            }
        }
    }

    #[test]
    fn cubic_kernel_exact_on_separable_cubics_3d() {
        let dims = Dims::d3(17, 17, 17);
        let f = |x: usize, y: usize, z: usize| {
            let c = |t: usize| {
                let t = t as f64;
                t * t * t * 0.001 - t * t * 0.05 + t
            };
            c(x) + c(y) + c(z)
        };
        let mut recon = vec![0.0f64; dims.len()];
        for z in 0..17 {
            for y in 0..17 {
                for x in 0..17 {
                    recon[dims.idx(x, y, z)] = f(x, y, z);
                }
            }
        }
        for p in interp_plan_nd(dims) {
            if p.far_left.is_some() && p.right.is_some() && p.far_right.is_some() {
                let pred = interp_cubic(&recon, p);
                assert!(
                    (pred - recon[p.pos]).abs() < 1e-6,
                    "pos {}: {pred} vs {}",
                    p.pos,
                    recon[p.pos]
                );
            }
        }
    }

    #[test]
    fn degenerate_grids() {
        assert!(interp_plan_nd(Dims::d1(0)).is_empty());
        assert!(interp_plan_nd(Dims::d1(1)).is_empty());
        check_plan(Dims::d3(2, 1, 1));
    }
}
