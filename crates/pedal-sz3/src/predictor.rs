//! Prediction stages of the SZ3 pipeline.
//!
//! Two predictors are provided, mirroring SZ3's composable design:
//!
//! * [`PredictorKind::Lorenzo`] — the classic first-order Lorenzo predictor
//!   for 1D/2D/3D grids, predicting each point from already-reconstructed
//!   neighbours by inclusion–exclusion.
//! * [`PredictorKind::Interp`] — multi-level interpolation (SZ3's flagship
//!   predictor) with linear and cubic kernels. Implemented for 1D fields,
//!   which covers the paper's lossy datasets (exaalt and obs_error are flat
//!   float arrays); for rank > 1 the pipeline transparently falls back to
//!   Lorenzo (recorded in the stream header so decompression matches).
//!
//! Prediction always consumes *reconstructed* values, never originals, so
//! the decompressor — which only has reconstructed data — stays in lockstep.

/// Predictor selector stored in the compressed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// First-order Lorenzo (any rank).
    Lorenzo,
    /// Multi-level linear interpolation (rank 1; falls back to Lorenzo).
    Interp,
    /// Multi-level cubic interpolation (rank 1; falls back to Lorenzo).
    InterpCubic,
}

impl PredictorKind {
    pub fn tag(self) -> u8 {
        match self {
            PredictorKind::Lorenzo => 0,
            PredictorKind::Interp => 1,
            PredictorKind::InterpCubic => 2,
        }
    }

    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(PredictorKind::Lorenzo),
            1 => Some(PredictorKind::Interp),
            2 => Some(PredictorKind::InterpCubic),
            _ => None,
        }
    }
}

/// Lorenzo prediction at (x, y, z) over a reconstructed buffer laid out
/// row-major with dims (nx, ny, nz). Out-of-range neighbours contribute 0.
#[inline]
pub fn lorenzo_predict(recon: &[f64], nx: usize, ny: usize, x: usize, y: usize, z: usize) -> f64 {
    let at = |dx: usize, dy: usize, dz: usize| -> f64 {
        // dx/dy/dz are 0 or 1 meaning "one step back".
        if (dx == 1 && x == 0) || (dy == 1 && y == 0) || (dz == 1 && z == 0) {
            0.0
        } else {
            recon[((z - dz) * ny + (y - dy)) * nx + (x - dx)]
        }
    };
    // Inclusion-exclusion over the 7 causal neighbours.
    at(1, 0, 0) + at(0, 1, 0) + at(0, 0, 1) - at(1, 1, 0) - at(1, 0, 1) - at(0, 1, 1) + at(1, 1, 1)
}

/// The visit order for multi-level interpolation over `n` points.
///
/// Level strides go 2^k, 2^(k-1), …, 2. Position 0 is the seed (predicted
/// as 0). At stride `s`, points at odd multiples of `s/2` are predicted
/// from their reconstructed neighbours at multiples of `s`.
/// Returns (position, left anchor, right anchor option, far-left anchor
/// option, far-right anchor option) tuples in visit order; anchors are used
/// by the linear/cubic kernels.
pub fn interp_plan(n: usize) -> Vec<InterpPoint> {
    let mut plan = Vec::with_capacity(n);
    if n == 0 {
        return plan;
    }
    // Seed points: 0 predicted from nothing; handled by caller at stride max.
    let mut stride = 1usize;
    while stride < n {
        stride <<= 1;
    }
    // stride is now >= n; seeds are the multiples of `stride` (just 0).
    while stride >= 2 {
        let half = stride / 2;
        let mut pos = half;
        while pos < n {
            let left = pos - half;
            let right = if pos + half < n { Some(pos + half) } else { None };
            let far_left = if pos >= 3 * half { Some(pos - 3 * half) } else { None };
            let far_right = if pos + 3 * half < n { Some(pos + 3 * half) } else { None };
            plan.push(InterpPoint { pos, left, right, far_left, far_right });
            pos += stride;
        }
        stride = half;
    }
    plan
}

/// One interpolated point and its anchor positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpPoint {
    pub pos: usize,
    pub left: usize,
    pub right: Option<usize>,
    pub far_left: Option<usize>,
    pub far_right: Option<usize>,
}

/// Linear interpolation kernel over reconstructed anchors.
#[inline]
pub fn interp_linear(recon: &[f64], p: InterpPoint) -> f64 {
    match p.right {
        Some(r) => 0.5 * (recon[p.left] + recon[r]),
        None => recon[p.left],
    }
}

/// Cubic (4-point) interpolation kernel; falls back to linear near edges.
#[inline]
pub fn interp_cubic(recon: &[f64], p: InterpPoint) -> f64 {
    match (p.far_left, p.right, p.far_right) {
        (Some(fl), Some(r), Some(fr)) => {
            // Catmull-Rom-style midpoint weights: (-1, 9, 9, -1)/16.
            (-recon[fl] + 9.0 * recon[p.left] + 9.0 * recon[r] - recon[fr]) / 16.0
        }
        _ => interp_linear(recon, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo_1d_is_previous_value() {
        let recon = vec![1.0, 2.0, 3.0, 0.0];
        // 1D: ny = nz = 1, only the x-1 term is in range.
        assert_eq!(lorenzo_predict(&recon, 4, 1, 3, 0, 0), 3.0);
        assert_eq!(lorenzo_predict(&recon, 4, 1, 0, 0, 0), 0.0);
    }

    #[test]
    fn lorenzo_2d_plane_is_exact() {
        // For f(x,y) = 3x + 5y + 2, the 2D Lorenzo prediction is exact.
        let (nx, ny) = (6, 5);
        let mut recon = vec![0.0f64; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                recon[y * nx + x] = 3.0 * x as f64 + 5.0 * y as f64 + 2.0;
            }
        }
        for y in 1..ny {
            for x in 1..nx {
                let pred = lorenzo_predict(&recon, nx, ny, x, y, 0);
                assert!((pred - recon[y * nx + x]).abs() < 1e-12, "({x},{y})");
            }
        }
    }

    #[test]
    fn lorenzo_3d_linear_field_is_exact() {
        let (nx, ny, nz) = (4, 4, 4);
        let mut recon = vec![0.0f64; nx * ny * nz];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    recon[(z * ny + y) * nx + x] = 1.5 * x as f64 - 2.5 * y as f64 + 4.0 * z as f64;
                }
            }
        }
        for z in 1..nz {
            for y in 1..ny {
                for x in 1..nx {
                    let pred = lorenzo_predict(&recon, nx, ny, x, y, z);
                    let truth = recon[(z * ny + y) * nx + x];
                    assert!((pred - truth).abs() < 1e-12, "({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn interp_plan_covers_all_points_once() {
        for n in [1usize, 2, 3, 4, 5, 17, 64, 100, 1023] {
            let plan = interp_plan(n);
            let mut seen = vec![false; n];
            seen[0] = true; // seed
            for p in &plan {
                assert!(!seen[p.pos], "n={n} pos {} visited twice", p.pos);
                // Anchors must already be reconstructed.
                assert!(seen[p.left], "n={n} left anchor {} not ready", p.left);
                if let Some(r) = p.right {
                    assert!(seen[r], "n={n} right anchor {r} not ready");
                }
                seen[p.pos] = true;
            }
            assert!(seen.iter().all(|&s| s), "n={n}: some points unvisited");
        }
    }

    #[test]
    fn interp_linear_exact_on_linear_data() {
        let n = 33;
        let recon: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();
        for p in interp_plan(n) {
            if p.right.is_some() {
                let pred = interp_linear(&recon, p);
                assert!((pred - recon[p.pos]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn interp_cubic_exact_on_cubic_data() {
        // Catmull-Rom midpoint weights reproduce cubics exactly at midpoints
        // of a uniform grid.
        let n = 65;
        let f = |i: usize| {
            let t = i as f64;
            0.01 * t * t * t - 0.3 * t * t + 2.0 * t - 5.0
        };
        let recon: Vec<f64> = (0..n).map(f).collect();
        for p in interp_plan(n) {
            if p.far_left.is_some() && p.far_right.is_some() && p.right.is_some() {
                let pred = interp_cubic(&recon, p);
                assert!(
                    (pred - recon[p.pos]).abs() < 1e-9,
                    "pos {}: {} vs {}",
                    p.pos,
                    pred,
                    recon[p.pos]
                );
            }
        }
    }

    #[test]
    fn predictor_tags_roundtrip() {
        for k in [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic] {
            assert_eq!(PredictorKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PredictorKind::from_tag(99), None);
    }
}
