//! Canonical Huffman coding for the quantization-code alphabet.
//!
//! SZ3's quantizer produces indexes over a potentially huge alphabet
//! (up to 2*radius+1 symbols), so the table-driven decoder used for DEFLATE
//! is unsuitable. This coder instead:
//!
//! * densifies the alphabet to the *observed* symbols,
//! * builds length-limited canonical codes (reusing the DEFLATE machinery),
//! * decodes bit-by-bit with per-length `first_code`/`first_index` arrays —
//!   O(code length) per symbol with no giant tables.

use pedal_deflate::bitio::{BitReader, BitWriter};
use pedal_deflate::huffman::build_code_lengths;

use crate::varint::{get_uvarint, put_uvarint};

/// Maximum code length for the quantization alphabet.
const MAX_LEN: usize = 27;

/// Errors from Huffman stream decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffStreamError {
    /// Header truncated or malformed.
    BadHeader,
    /// Bitstream ended early or contained an unassigned code.
    BadStream,
    /// Stream declares more symbols than the caller's budget allows.
    LimitExceeded(usize),
}

impl std::fmt::Display for HuffStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffStreamError::BadHeader => write!(f, "bad huffman header"),
            HuffStreamError::BadStream => write!(f, "bad huffman bitstream"),
            HuffStreamError::LimitExceeded(n) => {
                write!(f, "huffman stream exceeds {n} symbols")
            }
        }
    }
}

impl std::error::Error for HuffStreamError {}

/// Encode a slice of u32 symbols into a self-describing blob:
/// header (symbol table + code lengths) followed by the bit-packed payload.
pub fn encode(symbols: &[u32]) -> Vec<u8> {
    // Observed alphabet, densified.
    let distinct: Vec<u32> = {
        let mut v = symbols.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Frequency per dense index.
    let index_of = |s: u32, distinct: &[u32]| distinct.binary_search(&s).unwrap();
    let mut freqs = vec![0u32; distinct.len()];
    for &s in symbols {
        freqs[index_of(s, &distinct)] += 1;
    }
    let lengths = build_code_lengths(&freqs, MAX_LEN);

    // Header: n_symbols, count of distinct, then delta-varint symbol table,
    // then code lengths (one byte each).
    let mut out = Vec::with_capacity(symbols.len() / 2 + 64);
    put_uvarint(&mut out, symbols.len() as u64);
    put_uvarint(&mut out, distinct.len() as u64);
    let mut prev = 0u64;
    for &s in &distinct {
        put_uvarint(&mut out, s as u64 - prev);
        prev = s as u64;
    }
    out.extend(lengths.iter().copied());

    // Canonical codes (MSB-first emission order).
    let codes = canonical_codes(&lengths);
    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    if distinct.len() == 1 {
        // Single-symbol stream: payload carries nothing.
    } else {
        for &s in symbols {
            let i = index_of(s, &distinct);
            let (code, len) = (codes[i], lengths[i]);
            // Emit MSB-first so canonical decode can accumulate.
            for bit in (0..len).rev() {
                w.write_bits(((code >> bit) & 1) as u64, 1);
            }
        }
    }
    let payload = w.finish();
    put_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decode a blob produced by [`encode`].
///
/// The declared symbol count is untrusted; multi-symbol streams are
/// allocation-bounded by the payload size, but a single-symbol stream can
/// legitimately describe any count in O(1) bytes — callers decoding
/// hostile input must use [`decode_with_limit`].
pub fn decode(data: &[u8]) -> Result<Vec<u32>, HuffStreamError> {
    decode_with_limit(data, usize::MAX)
}

/// Like [`decode`] but rejects any stream declaring more than
/// `max_symbols` symbols *before* allocating for them, so a corrupt or
/// hostile header cannot trigger an out-of-budget allocation.
pub fn decode_with_limit(data: &[u8], max_symbols: usize) -> Result<Vec<u32>, HuffStreamError> {
    let mut i = 0usize;
    let n = get_uvarint(data, &mut i).ok_or(HuffStreamError::BadHeader)? as usize;
    let k = get_uvarint(data, &mut i).ok_or(HuffStreamError::BadHeader)? as usize;
    if n > max_symbols {
        return Err(HuffStreamError::LimitExceeded(max_symbols));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    if k == 0 {
        return Err(HuffStreamError::BadHeader);
    }
    // Every distinct symbol appears in the stream and costs at least one
    // header byte, so both bounds cap `k` by real input bytes.
    if k > n || k > data.len().saturating_sub(i) {
        return Err(HuffStreamError::BadHeader);
    }
    let mut distinct = Vec::with_capacity(k);
    let mut prev = 0u64;
    for _ in 0..k {
        let d = get_uvarint(data, &mut i).ok_or(HuffStreamError::BadHeader)?;
        // Checked add: a near-u64::MAX delta must not wrap the running
        // symbol value past the u32 plausibility check.
        prev = prev
            .checked_add(d)
            .filter(|&p| p <= u32::MAX as u64)
            .ok_or(HuffStreamError::BadHeader)?;
        distinct.push(prev as u32);
    }
    if i + k > data.len() {
        return Err(HuffStreamError::BadHeader);
    }
    let lengths: Vec<u8> = data[i..i + k].to_vec();
    i += k;
    let payload_len = get_uvarint(data, &mut i).ok_or(HuffStreamError::BadHeader)? as usize;
    // Checked add: a near-u64::MAX declared length must not wrap the
    // bounds comparison.
    let payload_end = i
        .checked_add(payload_len)
        .filter(|&end| end <= data.len())
        .ok_or(HuffStreamError::BadHeader)?;
    let payload = &data[i..payload_end];

    if k == 1 {
        return Ok(vec![distinct[0]; n]);
    }
    // With k > 1 every symbol costs at least one payload bit, so a count
    // that outruns the payload is corrupt — reject before reserving for it.
    if n > payload_len.saturating_mul(8) {
        return Err(HuffStreamError::BadStream);
    }

    // Canonical decode tables: first_code/first_index per length, and the
    // dense index ordering implied by canonical assignment.
    let decode_tab = CanonicalDecoder::new(&lengths).ok_or(HuffStreamError::BadHeader)?;
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = decode_tab.decode(&mut r).ok_or(HuffStreamError::BadStream)?;
        out.push(distinct[idx]);
    }
    Ok(out)
}

/// Canonical code values (not bit-reversed; MSB-first semantics).
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    for (sym, &len) in lengths.iter().enumerate() {
        if len > 0 {
            codes[sym] = next_code[len as usize];
            next_code[len as usize] += 1;
        }
    }
    codes
}

/// Bit-by-bit canonical decoder (Moffat–Turpin style).
struct CanonicalDecoder {
    /// first_code[l]: canonical code value of the first code of length l.
    first_code: Vec<u32>,
    /// first_index[l]: position in `order` of that first code.
    first_index: Vec<u32>,
    /// count[l]: number of codes of length l.
    count: Vec<u32>,
    /// Symbol (dense) indexes sorted by (length, symbol) — canonical order.
    order: Vec<u32>,
    max_len: usize,
}

impl CanonicalDecoder {
    fn new(lengths: &[u8]) -> Option<Self> {
        let max_len = lengths.iter().copied().max()? as usize;
        if max_len == 0 || max_len > MAX_LEN {
            return None;
        }
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l as usize > max_len {
                return None;
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft check: reject oversubscribed sets.
        let mut kraft = 0u64;
        for (l, &c) in count.iter().enumerate().take(max_len + 1).skip(1) {
            kraft += (c as u64) << (max_len - l);
        }
        if kraft > 1u64 << max_len {
            return None;
        }
        let mut first_code = vec![0u32; max_len + 2];
        let mut first_index = vec![0u32; max_len + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len {
            code = (code + if l > 1 { count[l - 1] } else { 0 }) << 1;
            first_code[l] = code;
            first_index[l] = index;
            index += count[l];
        }
        // Canonical symbol order: by (length, symbol index).
        let mut order: Vec<u32> =
            (0..lengths.len() as u32).filter(|&s| lengths[s as usize] > 0).collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));
        Some(Self { first_code, first_index, count, order, max_len })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Option<usize> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bits(1).ok()?;
            if self.count[l] > 0 {
                let offset = code.wrapping_sub(self.first_code[l]);
                if offset < self.count[l] {
                    let idx = self.order[(self.first_index[l] + offset) as usize];
                    return Some(idx as usize);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let syms = vec![5u32, 5, 5, 7, 7, 100, 5, 7, 5];
        assert_eq!(decode(&encode(&syms)).unwrap(), syms);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_single_symbol() {
        let syms = vec![42u32; 1000];
        let blob = encode(&syms);
        // Single-symbol streams should be tiny (no payload bits).
        assert!(blob.len() < 32, "blob is {} bytes", blob.len());
        assert_eq!(decode(&blob).unwrap(), syms);
    }

    #[test]
    fn roundtrip_wide_alphabet() {
        // Alphabet spread across the u32 range, zipf-ish frequencies.
        let mut syms = Vec::new();
        for i in 0..2000u32 {
            let s = i.wrapping_mul(i).wrapping_mul(2_654_435_761) % 500_000;
            let reps = 1 + (i % 7) as usize;
            syms.extend(std::iter::repeat_n(s, reps));
        }
        assert_eq!(decode(&encode(&syms)).unwrap(), syms);
    }

    #[test]
    fn roundtrip_gaussian_like_quant_codes() {
        // Typical quantizer output: codes clustered around the radius.
        let radius = 32_768u32;
        let mut syms = Vec::new();
        let mut x = 88172645463325252u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Sum of 4 nibbles approximates a narrow distribution.
            let jitter =
                ((x & 0xF) + ((x >> 4) & 0xF) + ((x >> 8) & 0xF) + ((x >> 12) & 0xF)) as i64 - 30;
            syms.push((radius as i64 + jitter) as u32);
        }
        let blob = encode(&syms);
        // Entropy ~4-5 bits/symbol: expect real compression vs 4 bytes/sym.
        assert!(blob.len() < syms.len() * 2);
        assert_eq!(decode(&blob).unwrap(), syms);
    }

    #[test]
    fn garbage_input_does_not_panic() {
        for n in 0..64 {
            let junk: Vec<u8> = (0..n).map(|i| (i * 37 + 11) as u8).collect();
            let _ = decode(&junk);
        }
    }

    #[test]
    fn truncated_payload_detected() {
        let syms: Vec<u32> = (0..100).map(|i| i % 9).collect();
        let blob = encode(&syms);
        assert!(decode(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn symbol_limit_enforced() {
        let syms: Vec<u32> = (0..200).map(|i| i % 5).collect();
        let blob = encode(&syms);
        assert_eq!(decode_with_limit(&blob, 200).unwrap(), syms);
        assert_eq!(decode_with_limit(&blob, 199), Err(HuffStreamError::LimitExceeded(199)));
    }

    #[test]
    fn single_symbol_bomb_rejected_before_allocation() {
        // A ~10-byte blob declaring 2^40 copies of one symbol: the limited
        // decode must reject it without materializing the vector.
        let mut blob = Vec::new();
        crate::varint::put_uvarint(&mut blob, 1u64 << 40); // n
        crate::varint::put_uvarint(&mut blob, 1); // k
        crate::varint::put_uvarint(&mut blob, 7); // the symbol
        blob.push(1); // its code length
        crate::varint::put_uvarint(&mut blob, 0); // payload_len
        assert_eq!(decode_with_limit(&blob, 1 << 20), Err(HuffStreamError::LimitExceeded(1 << 20)));
    }

    #[test]
    fn absurd_alphabet_rejected_before_allocation() {
        // k far larger than the blob itself cannot be a valid symbol table.
        let mut blob = Vec::new();
        crate::varint::put_uvarint(&mut blob, 100); // n
        crate::varint::put_uvarint(&mut blob, 1u64 << 50); // k
        assert_eq!(decode(&blob), Err(HuffStreamError::BadHeader));
    }

    #[test]
    fn count_outrunning_payload_rejected() {
        // Multi-symbol stream whose declared count cannot fit in the
        // payload bits: reject before reserving the output vector.
        let syms = vec![1u32, 2, 1, 2, 1];
        let blob = encode(&syms);
        let mut i = 0usize;
        let n = crate::varint::get_uvarint(&blob, &mut i).unwrap();
        assert_eq!(n, 5);
        // Re-write the count as an absurd value, keeping the rest.
        let mut bad = Vec::new();
        crate::varint::put_uvarint(&mut bad, 1u64 << 45);
        bad.extend_from_slice(&blob[i..]);
        assert_eq!(decode(&bad), Err(HuffStreamError::BadStream));
    }
}
