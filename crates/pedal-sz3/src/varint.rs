//! LEB128-style varint encoding for compact headers.

/// Append `v` as an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read an unsigned varint, advancing `i`. Returns None on truncation or
/// overlong encodings (> 10 bytes).
pub fn get_uvarint(data: &[u8], i: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if *i >= data.len() || shift >= 64 {
            return None;
        }
        let b = data[*i];
        *i += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Zigzag-encode a signed value for varint storage.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut i = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut i), Some(v));
        }
        assert_eq!(i, buf.len());
    }

    #[test]
    fn truncation_returns_none() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        let mut i = 0;
        assert_eq!(get_uvarint(&buf[..buf.len() - 1], &mut i), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
