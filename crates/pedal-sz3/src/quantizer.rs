//! Error-bounded linear-scale quantizer (SZ3's `LinearQuantizer`).
//!
//! Given a prediction `p` and true value `v`, emits the integer code
//! `round((v - p) / (2*eb))`. The reconstruction `p + 2*eb*code` is then
//! guaranteed within `eb` of `v` — unless the code falls outside the radius
//! or floating-point rounding breaks the bound, in which case the value is
//! marked *unpredictable* (code 0) and stored losslessly.

/// Quantizer over absolute error bound `eb`.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Absolute error bound.
    pub eb: f64,
    /// Codes live in [-radius+1, radius-1]; index 0 marks outliers.
    pub radius: i64,
}

/// Result of quantizing one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantized {
    /// In-bound code (non-zero index) and the reconstructed value.
    Code { index: u32, reconstructed: f64 },
    /// Out of range or bound violated: store the exact value.
    Unpredictable,
}

impl Quantizer {
    /// Default radius matching SZ3's 65536-bin configuration.
    pub const DEFAULT_RADIUS: i64 = 32_768;

    pub fn new(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Self { eb, radius: Self::DEFAULT_RADIUS }
    }

    pub fn with_radius(eb: f64, radius: i64) -> Self {
        assert!(eb > 0.0 && eb.is_finite());
        assert!(radius > 1);
        Self { eb, radius }
    }

    /// Quantize `value` against `prediction`.
    #[inline]
    pub fn quantize(&self, value: f64, prediction: f64) -> Quantized {
        if !value.is_finite() || !prediction.is_finite() {
            return Quantized::Unpredictable;
        }
        let diff = value - prediction;
        let code = (diff / (2.0 * self.eb)).round();
        if code.abs() >= self.radius as f64 {
            return Quantized::Unpredictable;
        }
        let code = code as i64;
        let reconstructed = prediction + 2.0 * self.eb * code as f64;
        // Verify the bound survived floating-point arithmetic.
        if (reconstructed - value).abs() > self.eb {
            return Quantized::Unpredictable;
        }
        Quantized::Code { index: (code + self.radius) as u32, reconstructed }
    }

    /// Reconstruct from a non-zero code index produced by [`Self::quantize`].
    #[inline]
    pub fn reconstruct(&self, index: u32, prediction: f64) -> f64 {
        let code = index as i64 - self.radius;
        prediction + 2.0 * self.eb * code as f64
    }

    /// The reserved outlier index.
    pub const OUTLIER: u32 = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bound_code_respects_eb() {
        let q = Quantizer::new(1e-4);
        for &(v, p) in &[(1.0f64, 0.9999), (0.5, 0.5003), (-2.0, -1.99), (1e6, 1e6 + 0.01)] {
            match q.quantize(v, p) {
                Quantized::Code { index, reconstructed } => {
                    assert!((reconstructed - v).abs() <= q.eb, "v={v} p={p}");
                    assert_ne!(index, Quantizer::OUTLIER);
                    assert!((reconstructed - q.reconstruct(index, p)).abs() == 0.0);
                }
                Quantized::Unpredictable => panic!("should quantize v={v} p={p}"),
            }
        }
    }

    #[test]
    fn zero_diff_maps_to_radius_index() {
        let q = Quantizer::new(0.01);
        match q.quantize(5.0, 5.0) {
            Quantized::Code { index, reconstructed } => {
                assert_eq!(index as i64, q.radius);
                assert_eq!(reconstructed, 5.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn far_values_are_unpredictable() {
        let q = Quantizer::new(1e-4);
        assert_eq!(q.quantize(1e9, 0.0), Quantized::Unpredictable);
    }

    #[test]
    fn nan_and_inf_unpredictable() {
        let q = Quantizer::new(1e-4);
        assert_eq!(q.quantize(f64::NAN, 0.0), Quantized::Unpredictable);
        assert_eq!(q.quantize(f64::INFINITY, 0.0), Quantized::Unpredictable);
        assert_eq!(q.quantize(1.0, f64::NAN), Quantized::Unpredictable);
    }

    #[test]
    fn reconstruct_inverts_quantize() {
        let q = Quantizer::new(0.5);
        let p = 10.0;
        for v in [9.0, 10.0, 11.0, 12.25, 7.75] {
            if let Quantized::Code { index, reconstructed } = q.quantize(v, p) {
                assert_eq!(q.reconstruct(index, p), reconstructed);
            } else {
                panic!("v={v}");
            }
        }
    }

    #[test]
    fn radius_boundary() {
        let q = Quantizer::with_radius(1.0, 4);
        // code = round(diff/2); radius 4 → |code| <= 3 representable.
        assert!(matches!(q.quantize(6.0, 0.0), Quantized::Code { .. })); // code 3
        assert_eq!(q.quantize(8.0, 0.0), Quantized::Unpredictable); // code 4
        assert!(matches!(q.quantize(-6.0, 0.0), Quantized::Code { .. }));
        assert_eq!(q.quantize(-8.0, 0.0), Quantized::Unpredictable);
    }

    #[test]
    #[should_panic]
    fn zero_eb_rejected() {
        Quantizer::new(0.0);
    }
}
