//! Pluggable lossless back-end stage of the SZ3 pipeline.
//!
//! SZ3 finishes its pipeline with a general-purpose lossless compressor
//! (zstd by default; DEFLATE/LZ4 selectable). PEDAL exploits exactly this
//! plug point: the paper's "SZ3 (C-Engine)" design routes the lossless
//! stage through the DPU's compression engine (paper §III-C.2, Fig. 4).
//!
//! The paper notes SZ3's native backend ("zstandard") has lower latency
//! than DEFLATE — our `Zs` stand-in is an LZ4-frame-based fast compressor
//! with the same role: fast, moderate ratio.

/// Backend selector recorded in the compressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// No lossless stage (encoded bytes pass through).
    None,
    /// Fast native backend (stands in for SZ3's zstd default).
    Zs,
    /// DEFLATE — the algorithm the BF2 C-Engine accelerates.
    Deflate,
    /// LZ4 block/frame compression.
    Lz4,
    /// pco numeric/columnar codec (bytes mode): the quantized SZ3 core
    /// is mostly small integer codes, which the u32-word view's delta +
    /// binning + rANS pipeline handles well.
    Pco,
}

impl BackendKind {
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::None => 0,
            BackendKind::Zs => 1,
            BackendKind::Deflate => 2,
            BackendKind::Lz4 => 3,
            BackendKind::Pco => 4,
        }
    }

    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(BackendKind::None),
            1 => Some(BackendKind::Zs),
            2 => Some(BackendKind::Deflate),
            3 => Some(BackendKind::Lz4),
            4 => Some(BackendKind::Pco),
            _ => None,
        }
    }
}

/// Backend failure during decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError(pub String);

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lossless backend error: {}", self.0)
    }
}

impl std::error::Error for BackendError {}

/// Compress `data` with the chosen backend.
pub fn backend_compress(kind: BackendKind, data: &[u8]) -> Vec<u8> {
    match kind {
        BackendKind::None => data.to_vec(),
        // The Zs stand-in favours speed: LZ4 with mild acceleration.
        BackendKind::Zs => pedal_lz4::compress_frame(data, 256 * 1024, 1),
        BackendKind::Deflate => pedal_deflate::compress(data, pedal_deflate::Level::DEFAULT),
        BackendKind::Lz4 => pedal_lz4::compress_frame(data, pedal_lz4::DEFAULT_BLOCK_SIZE, 1),
        BackendKind::Pco => pedal_pco::compress_bytes(data, &pedal_pco::PcoConfig::default()),
    }
}

/// Decompress `data` with the chosen backend.
pub fn backend_decompress(kind: BackendKind, data: &[u8]) -> Result<Vec<u8>, BackendError> {
    backend_decompress_with_limit(kind, data, usize::MAX)
}

/// Decompress `data` with the chosen backend, rejecting output beyond
/// `limit` bytes — the bound the sealed header's declared core length
/// imposes when the stream comes from an untrusted peer.
pub fn backend_decompress_with_limit(
    kind: BackendKind,
    data: &[u8],
    limit: usize,
) -> Result<Vec<u8>, BackendError> {
    match kind {
        BackendKind::None => {
            if data.len() > limit {
                return Err(BackendError(format!("stored core exceeds {limit} bytes")));
            }
            Ok(data.to_vec())
        }
        BackendKind::Zs | BackendKind::Lz4 => pedal_lz4::decompress_frame_with_limit(data, limit)
            .map_err(|e| BackendError(e.to_string())),
        BackendKind::Deflate => pedal_deflate::decompress_with_limit(data, limit)
            .map_err(|e| BackendError(e.to_string())),
        BackendKind::Pco => pedal_pco::decompress_bytes_with_limit(data, limit)
            .map_err(|e| BackendError(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_roundtrip() {
        let data = b"sz3 core bytes: quant codes + outliers + header".repeat(100);
        for kind in [
            BackendKind::None,
            BackendKind::Zs,
            BackendKind::Deflate,
            BackendKind::Lz4,
            BackendKind::Pco,
        ] {
            let packed = backend_compress(kind, &data);
            assert_eq!(backend_decompress(kind, &packed).unwrap(), data, "{kind:?}");
        }
    }

    #[test]
    fn compressing_backends_shrink_redundant_data() {
        let data = vec![0xABu8; 100_000];
        for kind in [BackendKind::Zs, BackendKind::Deflate, BackendKind::Lz4, BackendKind::Pco] {
            let packed = backend_compress(kind, &data);
            assert!(packed.len() * 10 < data.len(), "{kind:?}: {} bytes", packed.len());
        }
    }

    #[test]
    fn tags_roundtrip() {
        for kind in [
            BackendKind::None,
            BackendKind::Zs,
            BackendKind::Deflate,
            BackendKind::Lz4,
            BackendKind::Pco,
        ] {
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::from_tag(200), None);
    }

    #[test]
    fn corrupt_stream_is_an_error_not_a_panic() {
        for kind in [BackendKind::Zs, BackendKind::Deflate, BackendKind::Lz4, BackendKind::Pco] {
            let junk = vec![0x5Au8; 64];
            assert!(backend_decompress(kind, &junk).is_err(), "{kind:?}");
        }
    }
}
