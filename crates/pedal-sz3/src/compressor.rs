//! The end-to-end SZ3-style pipeline: predict → quantize → entropy-encode →
//! lossless backend, and its exact inverse.
//!
//! The pipeline is deliberately split into two halves:
//!
//! * [`encode_core`] / [`decode_core`] — everything up to (but excluding)
//!   the lossless stage. The output is the "core" byte stream.
//! * [`seal`] / [`unseal`] — apply / undo the lossless backend.
//!
//! PEDAL exploits the split: on BlueField-2 the lossless stage of "SZ3
//! (C-Engine)" executes on the hardware compression engine while the core
//! stages run on the SoC (paper Fig. 4). The simulated engine therefore
//! needs to see the two halves as separate operations with separately
//! attributable sizes and timings.

use crate::backend::{backend_compress, backend_decompress, BackendError, BackendKind};
use crate::field::{Dims, Field, Float};
use crate::huff;
use crate::interp_nd::interp_plan_nd;
use crate::predictor::{interp_cubic, interp_linear, lorenzo_predict, PredictorKind};
use crate::quantizer::{Quantized, Quantizer};
use crate::varint::{get_uvarint, put_uvarint};

/// Magic prefix of the core stream.
const CORE_MAGIC: &[u8; 4] = b"SZ3R";
/// Magic prefix of a sealed (backend-compressed) stream.
const SEALED_MAGIC: &[u8; 4] = b"SZ3S";

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sz3Config {
    /// Error bound (the paper uses ABS 1e-4). Interpreted per
    /// [`Self::relative`].
    pub error_bound: f64,
    /// When true, `error_bound` is *value-range relative* (SZ3's REL mode):
    /// the effective absolute bound is `error_bound * (max - min)` of the
    /// input. The effective absolute bound is what the stream records.
    pub relative: bool,
    pub predictor: PredictorKind,
    pub backend: BackendKind,
    /// Quantizer radius (codes per side).
    pub radius: i64,
}

impl Default for Sz3Config {
    fn default() -> Self {
        Self {
            error_bound: 1e-4,
            relative: false,
            predictor: PredictorKind::Interp,
            backend: BackendKind::Zs,
            radius: Quantizer::DEFAULT_RADIUS,
        }
    }
}

impl Sz3Config {
    /// Absolute error bound (SZ3's ABS mode).
    pub fn with_error_bound(eb: f64) -> Self {
        Self { error_bound: eb, ..Self::default() }
    }

    /// Value-range-relative error bound (SZ3's REL mode).
    pub fn with_relative_bound(rel: f64) -> Self {
        Self { error_bound: rel, relative: true, ..Self::default() }
    }

    /// Reject configurations the pipeline cannot honour: the error bound
    /// must be positive and finite (the quantizer asserts this) and the
    /// radius must leave room for at least one code per side.
    pub fn validate(&self) -> Result<(), Sz3Error> {
        if !self.error_bound.is_finite() || self.error_bound <= 0.0 {
            return Err(Sz3Error::BadConfig("error bound must be positive and finite"));
        }
        if self.radius <= 1 {
            return Err(Sz3Error::BadConfig("radius must be greater than 1"));
        }
        Ok(())
    }
}

/// Decompression failure.
#[derive(Debug, Clone, PartialEq)]
pub enum Sz3Error {
    /// Magic or header malformed.
    BadHeader(&'static str),
    /// Type tag does not match the requested element type.
    TypeMismatch { expected: u8, found: u8 },
    /// Entropy decode failed.
    Entropy(huff::HuffStreamError),
    /// Backend stage failed.
    Backend(BackendError),
    /// Stream is internally inconsistent.
    Corrupt(&'static str),
    /// Stream declares a size beyond the caller's decode budget.
    LimitExceeded { needed: usize, limit: usize },
    /// Configuration cannot produce a valid stream (e.g. NaN error bound).
    BadConfig(&'static str),
}

impl std::fmt::Display for Sz3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sz3Error::BadHeader(what) => write!(f, "bad sz3 header: {what}"),
            Sz3Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: stream {found:#x}, requested {expected:#x}")
            }
            Sz3Error::Entropy(e) => write!(f, "entropy stage: {e}"),
            Sz3Error::Backend(e) => write!(f, "{e}"),
            Sz3Error::Corrupt(what) => write!(f, "corrupt sz3 stream: {what}"),
            Sz3Error::LimitExceeded { needed, limit } => {
                write!(f, "sz3 stream needs {needed} bytes, budget is {limit}")
            }
            Sz3Error::BadConfig(what) => write!(f, "bad sz3 config: {what}"),
        }
    }
}

impl std::error::Error for Sz3Error {}

impl From<huff::HuffStreamError> for Sz3Error {
    fn from(e: huff::HuffStreamError) -> Self {
        Sz3Error::Entropy(e)
    }
}

impl From<BackendError> for Sz3Error {
    fn from(e: BackendError) -> Self {
        Sz3Error::Backend(e)
    }
}

/// Size accounting of the core encode, used by the DPU cost model to
/// attribute time to pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreStats {
    /// Input bytes (elements * element size).
    pub input_bytes: usize,
    /// Number of quantized (predictable) elements.
    pub quantized: usize,
    /// Number of outliers stored raw.
    pub outliers: usize,
    /// Bytes of the core stream (input to the lossless backend).
    pub core_bytes: usize,
    /// Bytes produced by the Huffman stage alone (excluding header and
    /// raw outliers) — the per-stage profiler's `sz3-huffman` span arg.
    pub huffman_bytes: usize,
    /// Raw outlier payload bytes appended after the entropy stream.
    pub outlier_bytes: usize,
}

/// Run predict+quantize+entropy-encode. Returns the core byte stream and
/// stage statistics. The core stream is what the lossless backend (possibly
/// the simulated C-Engine) compresses next.
pub fn encode_core<T: Float>(field: &Field<T>, cfg: &Sz3Config) -> (Vec<u8>, CoreStats) {
    let dims = field.dims;
    let n = dims.len();
    // REL mode: scale the bound by the data's value range. A zero or
    // non-finite range (constant/degenerate data) falls back to the raw
    // bound, which is then trivially satisfied.
    let abs_eb = if cfg.relative {
        let (lo, hi) = field.range();
        let range = hi - lo;
        let scaled = cfg.error_bound * range;
        if range.is_finite() && range > 0.0 && scaled.is_finite() {
            scaled
        } else {
            cfg.error_bound
        }
    } else {
        cfg.error_bound
    };
    let q = Quantizer::with_radius(abs_eb, cfg.radius);

    let predictor = effective_predictor(cfg.predictor, dims);

    let mut codes: Vec<u32> = Vec::with_capacity(n);
    let mut outliers: Vec<u8> = Vec::new();
    let mut n_outliers = 0usize;
    let mut recon = vec![0.0f64; n];

    let mut visit = |i: usize,
                     pred: f64,
                     value: f64,
                     codes: &mut Vec<u32>,
                     outliers: &mut Vec<u8>,
                     recon: &mut Vec<f64>| {
        // The decompressor stores reconstructions in T, so the bound must
        // hold on the T-rounded value, not the f64 intermediate.
        if let Quantized::Code { index, reconstructed } = q.quantize(value, pred) {
            let stored = T::from_f64(reconstructed).to_f64();
            if (stored - value).abs() <= q.eb {
                codes.push(index);
                recon[i] = stored;
                return;
            }
        }
        codes.push(Quantizer::OUTLIER);
        outliers.extend_from_slice(&T::from_f64(value).to_le_bytes_vec()[..T::BYTES]);
        n_outliers += 1;
        // Reconstruct exactly what the decompressor will read back.
        recon[i] = T::from_f64(value).to_f64();
    };

    match predictor {
        PredictorKind::Lorenzo => {
            for z in 0..dims.nz {
                for y in 0..dims.ny {
                    for x in 0..dims.nx {
                        let i = dims.idx(x, y, z);
                        let pred = lorenzo_predict(&recon, dims.nx, dims.ny, x, y, z);
                        visit(
                            i,
                            pred,
                            field.data[i].to_f64(),
                            &mut codes,
                            &mut outliers,
                            &mut recon,
                        );
                    }
                }
            }
        }
        PredictorKind::Interp | PredictorKind::InterpCubic => {
            // Seed point 0 predicted as 0, then the multi-level N-D plan.
            visit(0, 0.0, field.data[0].to_f64(), &mut codes, &mut outliers, &mut recon);
            let cubic = predictor == PredictorKind::InterpCubic;
            for p in interp_plan_nd(dims) {
                let pred = if cubic { interp_cubic(&recon, p) } else { interp_linear(&recon, p) };
                visit(
                    p.pos,
                    pred,
                    field.data[p.pos].to_f64(),
                    &mut codes,
                    &mut outliers,
                    &mut recon,
                );
            }
        }
    }

    // Entropy-encode the code stream.
    let encoded = huff::encode(&codes);

    // Assemble the core stream.
    let mut out = Vec::with_capacity(encoded.len() + outliers.len() + 64);
    out.extend_from_slice(CORE_MAGIC);
    out.push(1); // version
    out.push(T::TYPE_TAG);
    out.push(predictor.tag());
    put_uvarint(&mut out, dims.nx as u64);
    put_uvarint(&mut out, dims.ny as u64);
    put_uvarint(&mut out, dims.nz as u64);
    out.extend_from_slice(&abs_eb.to_le_bytes());
    put_uvarint(&mut out, cfg.radius as u64);
    put_uvarint(&mut out, n_outliers as u64);
    put_uvarint(&mut out, encoded.len() as u64);
    out.extend_from_slice(&encoded);
    out.extend_from_slice(&outliers);

    let stats = CoreStats {
        input_bytes: n * T::BYTES,
        quantized: n - n_outliers,
        outliers: n_outliers,
        core_bytes: out.len(),
        huffman_bytes: encoded.len(),
        outlier_bytes: outliers.len(),
    };
    (out, stats)
}

/// Pick the predictor actually used (header records this, not the request).
/// Interpolation is supported for every rank via the N-D plan.
fn effective_predictor(requested: PredictorKind, _dims: Dims) -> PredictorKind {
    requested
}

/// Invert [`encode_core`].
///
/// The element count in the header is trusted up to what the entropy
/// stream can back; decoding input from an untrusted peer should go
/// through [`decode_core_with_limit`] so the count is bounded *before*
/// reconstruction buffers are allocated.
pub fn decode_core<T: Float>(core: &[u8]) -> Result<Field<T>, Sz3Error> {
    decode_core_with_limit(core, usize::MAX)
}

/// Like [`decode_core`] but rejects streams declaring more than
/// `max_elements` elements, so a hostile header cannot trigger a huge
/// allocation or overflow the dimension product.
pub fn decode_core_with_limit<T: Float>(
    core: &[u8],
    max_elements: usize,
) -> Result<Field<T>, Sz3Error> {
    if core.len() < 8 || &core[..4] != CORE_MAGIC {
        return Err(Sz3Error::BadHeader("magic"));
    }
    let mut i = 4usize;
    let version = core[i];
    i += 1;
    if version != 1 {
        return Err(Sz3Error::BadHeader("version"));
    }
    let type_tag = core[i];
    i += 1;
    if type_tag != T::TYPE_TAG {
        return Err(Sz3Error::TypeMismatch { expected: T::TYPE_TAG, found: type_tag });
    }
    let predictor = PredictorKind::from_tag(core[i]).ok_or(Sz3Error::BadHeader("predictor"))?;
    i += 1;
    let nx = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("nx"))? as usize;
    let ny = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("ny"))? as usize;
    let nz = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("nz"))? as usize;
    let dims = Dims { nx, ny, nz };
    // Untrusted dimensions: the product must neither overflow nor outrun
    // the caller's budget — checked before any size-`n` allocation.
    let n = dims.checked_len().ok_or(Sz3Error::Corrupt("dimension product overflows"))?;
    if n > max_elements {
        return Err(Sz3Error::LimitExceeded {
            needed: n.saturating_mul(T::BYTES),
            limit: max_elements.saturating_mul(T::BYTES),
        });
    }
    if i + 8 > core.len() {
        return Err(Sz3Error::BadHeader("eb"));
    }
    let eb = f64::from_le_bytes(core[i..i + 8].try_into().unwrap());
    i += 8;
    if eb <= 0.0 || eb.is_nan() || !eb.is_finite() {
        return Err(Sz3Error::BadHeader("eb value"));
    }
    let radius = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("radius"))? as i64;
    if radius <= 1 {
        return Err(Sz3Error::BadHeader("radius value"));
    }
    let n_outliers = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("outliers"))? as usize;
    let enc_len = get_uvarint(core, &mut i).ok_or(Sz3Error::BadHeader("enc len"))? as usize;
    // Checked add: a near-u64::MAX declared length must not wrap the
    // bounds comparison.
    let enc_end = i
        .checked_add(enc_len)
        .filter(|&end| end <= core.len())
        .ok_or(Sz3Error::BadHeader("enc bytes"))?;
    let codes = huff::decode_with_limit(&core[i..enc_end], n)?;
    i = enc_end;

    if codes.len() != n {
        return Err(Sz3Error::Corrupt("code count != element count"));
    }
    let outlier_bytes = &core[i..];
    let outlier_len =
        n_outliers.checked_mul(T::BYTES).ok_or(Sz3Error::Corrupt("outlier count overflows"))?;
    if outlier_bytes.len() != outlier_len {
        return Err(Sz3Error::Corrupt("outlier byte count"));
    }

    let q = Quantizer::with_radius(eb, radius);
    let mut recon = vec![0.0f64; n];
    let mut out_data = vec![T::zero(); n];
    let mut outlier_pos = 0usize;

    // Codes were emitted in *visit order*, which for interpolation differs
    // from position order; consume them with a running cursor.
    let mut code_cursor = 0usize;
    let mut place = |i: usize,
                     pred: f64,
                     recon: &mut Vec<f64>,
                     out_data: &mut Vec<T>|
     -> Result<(), Sz3Error> {
        let code = codes[code_cursor];
        code_cursor += 1;
        if code == Quantizer::OUTLIER {
            if outlier_pos + T::BYTES > outlier_bytes.len() {
                return Err(Sz3Error::Corrupt("outlier stream exhausted"));
            }
            let v = T::from_le_slice(&outlier_bytes[outlier_pos..outlier_pos + T::BYTES]);
            outlier_pos += T::BYTES;
            recon[i] = v.to_f64();
            out_data[i] = v;
        } else {
            if code as i64 >= 2 * radius {
                return Err(Sz3Error::Corrupt("quant code out of range"));
            }
            let v = q.reconstruct(code, pred);
            let stored = T::from_f64(v);
            // Mirror the encoder: reconstructions live in T precision.
            recon[i] = stored.to_f64();
            out_data[i] = stored;
        }
        Ok(())
    };

    match predictor {
        PredictorKind::Lorenzo => {
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx {
                        let idx = dims.idx(x, y, z);
                        let pred = lorenzo_predict(&recon, nx, ny, x, y, z);
                        place(idx, pred, &mut recon, &mut out_data)?;
                    }
                }
            }
        }
        PredictorKind::Interp | PredictorKind::InterpCubic => {
            place(0, 0.0, &mut recon, &mut out_data)?;
            let cubic = predictor == PredictorKind::InterpCubic;
            for p in interp_plan_nd(dims) {
                let pred = if cubic { interp_cubic(&recon, p) } else { interp_linear(&recon, p) };
                place(p.pos, pred, &mut recon, &mut out_data)?;
            }
        }
    }

    Ok(Field::new(dims, out_data))
}

/// Apply the lossless backend, producing the final sealed stream.
pub fn seal(core: &[u8], backend: BackendKind) -> Vec<u8> {
    seal_with(core, backend, |data| backend_compress(backend, data))
}

/// Like [`seal`] but the actual compression is delegated to `compress_fn` —
/// this is the hook the simulated C-Engine plugs into. The function must
/// produce a stream that [`backend_decompress`] for `backend` can undo.
pub fn seal_with(
    core: &[u8],
    backend: BackendKind,
    compress_fn: impl FnOnce(&[u8]) -> Vec<u8>,
) -> Vec<u8> {
    let packed = compress_fn(core);
    let mut out = Vec::with_capacity(packed.len() + 16);
    out.extend_from_slice(SEALED_MAGIC);
    out.push(backend.tag());
    put_uvarint(&mut out, core.len() as u64);
    out.extend_from_slice(&packed);
    out
}

/// Undo [`seal`], recovering the core stream.
pub fn unseal(sealed: &[u8]) -> Result<(Vec<u8>, BackendKind), Sz3Error> {
    unseal_with(sealed, backend_decompress)
}

/// Like [`unseal`] but decompression is delegated (C-Engine hook).
pub fn unseal_with(
    sealed: &[u8],
    decompress_fn: impl FnOnce(BackendKind, &[u8]) -> Result<Vec<u8>, BackendError>,
) -> Result<(Vec<u8>, BackendKind), Sz3Error> {
    unseal_with_limit(sealed, usize::MAX, |backend, packed, _limit| decompress_fn(backend, packed))
}

/// Like [`unseal_with`] but the declared core length is validated against
/// `max_core_len` *before* the backend runs, and the delegate receives the
/// byte budget it must enforce — a hostile header cannot make the lossless
/// stage inflate past the caller's budget.
pub fn unseal_with_limit(
    sealed: &[u8],
    max_core_len: usize,
    decompress_fn: impl FnOnce(BackendKind, &[u8], usize) -> Result<Vec<u8>, BackendError>,
) -> Result<(Vec<u8>, BackendKind), Sz3Error> {
    if sealed.len() < 6 || &sealed[..4] != SEALED_MAGIC {
        return Err(Sz3Error::BadHeader("sealed magic"));
    }
    let backend = BackendKind::from_tag(sealed[4]).ok_or(Sz3Error::BadHeader("backend tag"))?;
    let mut i = 5usize;
    let core_len = get_uvarint(sealed, &mut i).ok_or(Sz3Error::BadHeader("core len"))? as usize;
    if core_len > max_core_len {
        return Err(Sz3Error::LimitExceeded { needed: core_len, limit: max_core_len });
    }
    let core = decompress_fn(backend, &sealed[i..], core_len)?;
    if core.len() != core_len {
        return Err(Sz3Error::Corrupt("core length mismatch"));
    }
    Ok((core, backend))
}

/// Undo [`seal`] with a byte budget on the recovered core stream.
pub fn unseal_limited(
    sealed: &[u8],
    max_core_len: usize,
) -> Result<(Vec<u8>, BackendKind), Sz3Error> {
    unseal_with_limit(sealed, max_core_len, crate::backend::backend_decompress_with_limit)
}

/// Core-stream byte budget implied by an expected decompressed size: the
/// core carries the entropy-coded codes plus raw outliers, which for any
/// stream [`encode_core`] can emit stays within a small multiple of the
/// element bytes plus a fixed symbol-table allowance. Shared by every
/// decode path (SoC and C-Engine) so both reject oversized streams at the
/// same threshold.
pub fn core_limit_for_output(output_bytes: usize) -> usize {
    output_bytes.saturating_mul(4).saturating_add(1 << 20)
}

/// One-shot compression: core encode + backend seal.
pub fn compress<T: Float>(field: &Field<T>, cfg: &Sz3Config) -> Vec<u8> {
    let (core, _) = encode_core(field, cfg);
    seal(&core, cfg.backend)
}

/// One-shot compression with configuration validation: a NaN, infinite, or
/// non-positive error bound (or degenerate radius) is reported as
/// [`Sz3Error::BadConfig`] instead of panicking inside the quantizer.
pub fn compress_checked<T: Float>(field: &Field<T>, cfg: &Sz3Config) -> Result<Vec<u8>, Sz3Error> {
    cfg.validate()?;
    Ok(compress(field, cfg))
}

/// One-shot decompression.
pub fn decompress<T: Float>(sealed: &[u8]) -> Result<Field<T>, Sz3Error> {
    let (core, _) = unseal(sealed)?;
    decode_core(&core)
}

/// One-shot decompression bounded by an output budget in bytes: both the
/// backend stage and the reconstruction are capped, so hostile streams are
/// rejected before any out-of-budget allocation.
pub fn decompress_with_limit<T: Float>(
    sealed: &[u8],
    max_output_bytes: usize,
) -> Result<Field<T>, Sz3Error> {
    let (core, _) = unseal_limited(sealed, core_limit_for_output(max_output_bytes))?;
    decode_core_with_limit(&core, max_output_bytes / T::BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_field_f32(n: usize) -> Field<f32> {
        Field::from_fn(Dims::d1(n), |x, _, _| {
            let t = x as f32 * 0.01;
            t.sin() * 10.0 + (t * 3.7).cos() * 2.0
        })
    }

    fn check_bound<T: Float>(orig: &Field<T>, recon: &Field<T>, eb: f64) {
        let diff = orig.max_abs_diff(recon);
        assert!(diff <= eb * (1.0 + 1e-12), "max diff {diff} > eb {eb}");
    }

    #[test]
    fn roundtrip_1d_all_predictors() {
        let field = wave_field_f32(10_000);
        for predictor in [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic]
        {
            let cfg = Sz3Config { predictor, ..Sz3Config::with_error_bound(1e-4) };
            let sealed = compress(&field, &cfg);
            let recon: Field<f32> = decompress(&sealed).unwrap();
            check_bound(&field, &recon, cfg.error_bound);
        }
    }

    #[test]
    fn roundtrip_2d_3d_lorenzo() {
        let f2 = Field::<f64>::from_fn(Dims::d2(100, 80), |x, y, _| {
            ((x as f64) * 0.05).sin() * ((y as f64) * 0.03).cos() * 50.0
        });
        let f3 = Field::<f64>::from_fn(Dims::d3(24, 20, 16), |x, y, z| {
            (x + 2 * y + 3 * z) as f64 * 0.1 + ((x * y) as f64 * 0.01).sin()
        });
        let cfg =
            Sz3Config { predictor: PredictorKind::Lorenzo, ..Sz3Config::with_error_bound(1e-3) };
        for f in [&f2, &f3] {
            let sealed = compress(f, &cfg);
            let recon: Field<f64> = decompress(&sealed).unwrap();
            check_bound(f, &recon, cfg.error_bound);
        }
    }

    #[test]
    fn interp_on_2d_uses_nd_plan_and_roundtrips() {
        let f = Field::<f32>::from_fn(Dims::d2(50, 40), |x, y, _| (x * y) as f32 * 0.001);
        let cfg = Sz3Config { predictor: PredictorKind::Interp, ..Default::default() };
        let sealed = compress(&f, &cfg);
        let recon: Field<f32> = decompress(&sealed).unwrap();
        check_bound(&f, &recon, cfg.error_bound);
    }

    #[test]
    fn all_backends_produce_identical_fields() {
        let field = wave_field_f32(5_000);
        let mut reference: Option<Vec<f32>> = None;
        for backend in [BackendKind::None, BackendKind::Zs, BackendKind::Deflate, BackendKind::Lz4]
        {
            let cfg = Sz3Config { backend, ..Default::default() };
            let sealed = compress(&field, &cfg);
            let recon: Field<f32> = decompress(&sealed).unwrap();
            match &reference {
                None => reference = Some(recon.data),
                Some(r) => assert_eq!(r, &recon.data, "{backend:?}"),
            }
        }
    }

    #[test]
    fn split_phase_equals_one_shot() {
        let field = wave_field_f32(3_000);
        let cfg = Sz3Config::default();
        let (core, stats) = encode_core(&field, &cfg);
        assert_eq!(stats.input_bytes, 3_000 * 4);
        assert_eq!(stats.quantized + stats.outliers, 3_000);
        assert_eq!(stats.core_bytes, core.len());
        // Stage accounting: header + entropy stream + raw outliers make
        // up the whole core, and the entropy stage produced real bytes.
        assert!(stats.huffman_bytes > 0);
        assert!(stats.huffman_bytes + stats.outlier_bytes < stats.core_bytes);
        assert_eq!(stats.outlier_bytes, stats.outliers * 4);
        let sealed = seal(&core, cfg.backend);
        assert_eq!(sealed, compress(&field, &cfg));
        let (core2, backend) = unseal(&sealed).unwrap();
        assert_eq!(backend, cfg.backend);
        assert_eq!(core2, core);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let field = wave_field_f32(200_000);
        let cfg = Sz3Config::with_error_bound(1e-4);
        let sealed = compress(&field, &cfg);
        let ratio = (field.data.len() * 4) as f64 / sealed.len() as f64;
        assert!(ratio > 3.0, "ratio only {ratio:.2}");
    }

    #[test]
    fn random_noise_still_bounded() {
        // Worst case: incompressible noise. Bound must hold even if nearly
        // everything lands in one quant bucket or becomes an outlier.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let field = Field::<f32>::from_fn(Dims::d1(20_000), |_, _, _| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) as f32 * 2000.0 - 1000.0
        });
        let cfg = Sz3Config::with_error_bound(1e-4);
        let recon: Field<f32> = decompress(&compress(&field, &cfg)).unwrap();
        check_bound(&field, &recon, cfg.error_bound);
    }

    #[test]
    fn nan_and_inf_survive_exactly() {
        let mut field = wave_field_f32(100);
        field.data[10] = f32::NAN;
        field.data[20] = f32::INFINITY;
        field.data[30] = f32::NEG_INFINITY;
        let cfg = Sz3Config::default();
        let recon: Field<f32> = decompress(&compress(&field, &cfg)).unwrap();
        assert!(recon.data[10].is_nan());
        assert_eq!(recon.data[20], f32::INFINITY);
        assert_eq!(recon.data[30], f32::NEG_INFINITY);
        // All finite values still bounded.
        for (i, (&a, &b)) in field.data.iter().zip(&recon.data).enumerate() {
            if a.is_finite() {
                assert!((a - b).abs() as f64 <= cfg.error_bound, "index {i}");
            }
        }
    }

    #[test]
    fn type_mismatch_detected() {
        let field = wave_field_f32(64);
        let sealed = compress(&field, &Sz3Config::default());
        let err = decompress::<f64>(&sealed).unwrap_err();
        assert!(matches!(err, Sz3Error::TypeMismatch { .. }));
    }

    #[test]
    fn truncated_or_corrupt_streams_error_cleanly() {
        let field = wave_field_f32(512);
        let sealed = compress(&field, &Sz3Config::default());
        for cut in [0, 3, 5, sealed.len() / 2] {
            assert!(decompress::<f32>(&sealed[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = sealed.clone();
        bad[4] = 0xEE; // invalid backend tag
        assert!(decompress::<f32>(&bad).is_err());
    }

    #[test]
    fn hostile_dims_rejected_without_allocation() {
        // Craft a core whose header declares astronomically large dims.
        let field = wave_field_f32(16);
        let (core, _) = encode_core(&field, &Sz3Config::default());
        // Rebuild the header with nx = 2^62, ny = 2^3, nz = 2 (overflow).
        let mut bad = core[..7].to_vec(); // magic, version, type, predictor
        put_uvarint(&mut bad, 1u64 << 62);
        put_uvarint(&mut bad, 1u64 << 3);
        put_uvarint(&mut bad, 2);
        bad.extend_from_slice(&1e-4f64.to_le_bytes());
        put_uvarint(&mut bad, 32768); // radius
        put_uvarint(&mut bad, 0); // outliers
        put_uvarint(&mut bad, 0); // enc_len
        assert_eq!(decode_core::<f32>(&bad), Err(Sz3Error::Corrupt("dimension product overflows")));
        // Large but non-overflowing dims: rejected by the element budget.
        let mut big = core[..7].to_vec();
        put_uvarint(&mut big, 1u64 << 40);
        put_uvarint(&mut big, 1);
        put_uvarint(&mut big, 1);
        big.extend_from_slice(&1e-4f64.to_le_bytes());
        put_uvarint(&mut big, 32768);
        put_uvarint(&mut big, 0);
        put_uvarint(&mut big, 0);
        assert!(matches!(
            decode_core_with_limit::<f32>(&big, 1 << 20),
            Err(Sz3Error::LimitExceeded { .. })
        ));
    }

    #[test]
    fn sealed_core_length_bomb_rejected() {
        let field = wave_field_f32(64);
        let sealed = compress(&field, &Sz3Config::default());
        // Sealed header claiming a multi-GiB core: the budgeted unseal
        // must refuse before running the backend.
        let mut bomb = sealed[..5].to_vec(); // magic + backend tag
        put_uvarint(&mut bomb, 1u64 << 38);
        bomb.extend_from_slice(&sealed[sealed.len() - 16..]);
        assert!(matches!(
            unseal_limited(&bomb, core_limit_for_output(64 * 4)),
            Err(Sz3Error::LimitExceeded { .. })
        ));
        // The honest stream passes the same budget.
        let recon: Field<f32> = decompress_with_limit(&sealed, 64 * 4).unwrap();
        check_bound(&field, &recon, 1e-4);
    }

    #[test]
    fn bad_config_is_an_error_not_a_panic() {
        let field = wave_field_f32(32);
        for eb in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
            let cfg = Sz3Config::with_error_bound(eb);
            assert!(matches!(compress_checked(&field, &cfg), Err(Sz3Error::BadConfig(_))));
        }
        let cfg = Sz3Config { radius: 1, ..Sz3Config::default() };
        assert!(matches!(compress_checked(&field, &cfg), Err(Sz3Error::BadConfig(_))));
    }

    #[test]
    fn tiny_fields() {
        for n in [1usize, 2, 3, 5] {
            let field = Field::<f64>::from_fn(Dims::d1(n), |x, _, _| x as f64 * 1.5);
            let cfg = Sz3Config::with_error_bound(0.01);
            let recon: Field<f64> = decompress(&compress(&field, &cfg)).unwrap();
            check_bound(&field, &recon, 0.01);
        }
    }

    #[test]
    fn f64_roundtrip_with_tight_bound() {
        let field =
            Field::<f64>::from_fn(Dims::d1(8_000), |x, _, _| (x as f64 * 1e-3).exp().sin() * 1e-2);
        let cfg = Sz3Config::with_error_bound(1e-9);
        let recon: Field<f64> = decompress(&compress(&field, &cfg)).unwrap();
        check_bound(&field, &recon, 1e-9);
    }
}
