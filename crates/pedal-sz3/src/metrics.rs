//! Reconstruction-quality metrics for lossy compression (the standard
//! SDRBench reporting set: max error, RMSE, PSNR, value range).

use crate::field::{Field, Float};

/// Quality report comparing a reconstruction against the original.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Maximum absolute elementwise error over finite values.
    pub max_abs_error: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Peak signal-to-noise ratio in dB (∞ for exact reconstructions).
    pub psnr_db: f64,
    /// Value range (max - min) of the original data.
    pub value_range: f64,
    /// Number of elements compared.
    pub elements: usize,
}

/// Compute the quality report for `recon` against `original`.
///
/// Non-finite originals are excluded from the error statistics (they are
/// stored exactly by the pipeline and carry no meaningful distance).
pub fn quality<T: Float>(original: &Field<T>, recon: &Field<T>) -> QualityReport {
    assert_eq!(original.dims, recon.dims, "field shapes differ");
    let (lo, hi) = original.range();
    let range = if hi >= lo { hi - lo } else { 0.0 };
    let mut max_err = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut n = 0usize;
    for (&a, &b) in original.data.iter().zip(&recon.data) {
        let a = a.to_f64();
        let b = b.to_f64();
        if !a.is_finite() {
            continue;
        }
        let e = (a - b).abs();
        max_err = max_err.max(e);
        sum_sq += e * e;
        n += 1;
    }
    let rmse = if n > 0 { (sum_sq / n as f64).sqrt() } else { 0.0 };
    let psnr_db =
        if rmse == 0.0 || range == 0.0 { f64::INFINITY } else { 20.0 * (range / rmse).log10() };
    QualityReport { max_abs_error: max_err, rmse, psnr_db, value_range: range, elements: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dims;

    #[test]
    fn exact_reconstruction_has_infinite_psnr() {
        let f = Field::<f64>::from_fn(Dims::d1(100), |x, _, _| x as f64);
        let q = quality(&f, &f.clone());
        assert_eq!(q.max_abs_error, 0.0);
        assert_eq!(q.rmse, 0.0);
        assert!(q.psnr_db.is_infinite());
        assert_eq!(q.value_range, 99.0);
    }

    #[test]
    fn uniform_offset_statistics() {
        let a = Field::<f64>::from_fn(Dims::d1(1000), |x, _, _| x as f64);
        let mut b = a.clone();
        for v in &mut b.data {
            *v += 0.5;
        }
        let q = quality(&a, &b);
        assert!((q.max_abs_error - 0.5).abs() < 1e-12);
        assert!((q.rmse - 0.5).abs() < 1e-12);
        // PSNR = 20 log10(999 / 0.5) ≈ 66.0 dB.
        assert!((q.psnr_db - 20.0 * (999.0f64 / 0.5).log10()).abs() < 1e-9);
    }

    #[test]
    fn nonfinite_values_excluded() {
        let mut a = Field::<f32>::from_fn(Dims::d1(10), |x, _, _| x as f32);
        a.data[3] = f32::NAN;
        let b = a.clone();
        let q = quality(&a, &b);
        assert_eq!(q.elements, 9);
        assert_eq!(q.max_abs_error, 0.0);
    }

    #[test]
    fn sz3_psnr_improves_with_tighter_bound() {
        let f = Field::<f32>::from_fn(Dims::d1(20_000), |x, _, _| (x as f32 * 0.01).sin() * 100.0);
        let mut last_psnr = 0.0;
        for eb in [1.0f64, 0.1, 1e-3] {
            let cfg = crate::Sz3Config::with_error_bound(eb);
            let recon: Field<f32> = crate::decompress(&crate::compress(&f, &cfg)).unwrap();
            let q = quality(&f, &recon);
            assert!(q.max_abs_error <= eb);
            assert!(q.psnr_db > last_psnr, "eb {eb}: psnr {}", q.psnr_db);
            last_psnr = q.psnr_db;
        }
        assert!(last_psnr > 80.0, "1e-3 bound on range 200 should exceed 80 dB");
    }
}
