//! N-dimensional scientific data fields (1D/2D/3D, f32/f64) — the input
//! type for the SZ3-style pipeline.

/// Floating-point element trait covering what the pipeline needs.
pub trait Float:
    Copy
    + PartialOrd
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Neg<Output = Self>
    + 'static
{
    /// Size of the wire representation in bytes.
    const BYTES: usize;
    /// Type tag stored in compressed headers.
    const TYPE_TAG: u8;
    fn zero() -> Self;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn to_le_bytes_vec(self) -> [u8; 8];
    fn from_le_slice(b: &[u8]) -> Self;
    fn abs(self) -> Self;
    fn is_finite(self) -> bool;
}

impl Float for f32 {
    const BYTES: usize = 4;
    const TYPE_TAG: u8 = 0x32;
    fn zero() -> Self {
        0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn to_le_bytes_vec(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.to_le_bytes());
        out
    }
    fn from_le_slice(b: &[u8]) -> Self {
        f32::from_le_bytes(b[..4].try_into().unwrap())
    }
    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Float for f64 {
    const BYTES: usize = 8;
    const TYPE_TAG: u8 = 0x64;
    fn zero() -> Self {
        0.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn to_le_bytes_vec(self) -> [u8; 8] {
        self.to_le_bytes()
    }
    fn from_le_slice(b: &[u8]) -> Self {
        f64::from_le_bytes(b[..8].try_into().unwrap())
    }
    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Dimensions of a field; trailing dimensions of 1 are allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// (nx, ny, nz); a 1D field is (n, 1, 1), a 2D field (nx, ny, 1).
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims {
    pub fn d1(n: usize) -> Self {
        Self { nx: n, ny: 1, nz: 1 }
    }
    pub fn d2(nx: usize, ny: usize) -> Self {
        Self { nx, ny, nz: 1 }
    }
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }
    /// Total element count.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }
    /// Total element count, or `None` when the product overflows `usize` —
    /// required when the dimensions come from an untrusted stream header.
    pub fn checked_len(&self) -> Option<usize> {
        self.nx.checked_mul(self.ny)?.checked_mul(self.nz)
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Effective dimensionality (ignoring trailing 1s).
    pub fn rank(&self) -> usize {
        if self.nz > 1 {
            3
        } else if self.ny > 1 {
            2
        } else {
            1
        }
    }
    /// Row-major linear index for (x, y, z).
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.ny + y) * self.nx + x
    }
}

/// An owned N-D field of scientific data.
#[derive(Debug, Clone, PartialEq)]
pub struct Field<T: Float> {
    pub dims: Dims,
    pub data: Vec<T>,
}

impl<T: Float> Field<T> {
    /// Construct from raw data; panics if the element count mismatches.
    pub fn new(dims: Dims, data: Vec<T>) -> Self {
        assert_eq!(dims.len(), data.len(), "dims {dims:?} != {} elements", data.len());
        Self { dims, data }
    }

    /// A zero-filled field.
    pub fn zeros(dims: Dims) -> Self {
        Self { data: vec![T::zero(); dims.len()], dims }
    }

    /// Build a field by sampling a function of (x, y, z).
    pub fn from_fn(dims: Dims, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Self { dims, data }
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.dims.idx(x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dims.idx(x, y, z);
        self.data[i] = v;
    }

    /// Value range (min, max), ignoring non-finite entries.
    pub fn range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            let v = v.to_f64();
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }

    /// Reinterpret the field as raw little-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * T::BYTES);
        for &v in &self.data {
            out.extend_from_slice(&v.to_le_bytes_vec()[..T::BYTES]);
        }
        out
    }

    /// Parse a field back from little-endian bytes.
    pub fn from_bytes(dims: Dims, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), dims.len() * T::BYTES);
        let data = bytes.chunks_exact(T::BYTES).map(T::from_le_slice).collect();
        Self { dims, data }
    }

    /// Maximum absolute elementwise difference against another field.
    pub fn max_abs_diff(&self, other: &Field<T>) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_rank_and_len() {
        assert_eq!(Dims::d1(10).rank(), 1);
        assert_eq!(Dims::d2(4, 5).rank(), 2);
        assert_eq!(Dims::d3(2, 3, 4).rank(), 3);
        assert_eq!(Dims::d3(2, 3, 4).len(), 24);
        // Trailing singleton dims collapse rank.
        assert_eq!(Dims::d3(7, 1, 1).rank(), 1);
    }

    #[test]
    fn indexing_row_major() {
        let d = Dims::d3(3, 4, 5);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 3);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.idx(2, 3, 4), 59);
    }

    #[test]
    fn from_fn_and_get() {
        let f = Field::<f32>::from_fn(Dims::d2(3, 2), |x, y, _| (x + 10 * y) as f32);
        assert_eq!(f.get(2, 1, 0), 12.0);
        assert_eq!(f.get(0, 0, 0), 0.0);
    }

    #[test]
    fn byte_roundtrip_f32_f64() {
        let f32_field = Field::<f32>::from_fn(Dims::d1(100), |x, _, _| (x as f32).sin());
        let back = Field::<f32>::from_bytes(f32_field.dims, &f32_field.to_bytes());
        assert_eq!(f32_field, back);

        let f64_field =
            Field::<f64>::from_fn(Dims::d2(8, 9), |x, y, _| (x as f64) / (y as f64 + 1.0));
        let back = Field::<f64>::from_bytes(f64_field.dims, &f64_field.to_bytes());
        assert_eq!(f64_field, back);
    }

    #[test]
    fn range_ignores_nonfinite() {
        let mut f = Field::<f64>::from_fn(Dims::d1(5), |x, _, _| x as f64);
        f.data[2] = f64::NAN;
        f.data[3] = f64::INFINITY;
        assert_eq!(f.range(), (0.0, 4.0));
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = Field::<f32>::from_fn(Dims::d1(4), |x, _, _| x as f32);
        let mut b = a.clone();
        b.data[3] += 0.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }
}
