//! # pedal-sz3
//!
//! An SZ3-style modular error-bounded lossy compressor for scientific data,
//! reproducing the five-stage pipeline described in the PEDAL paper's
//! background (§II-B): preprocessor → predictor → quantizer → entropy
//! encoder → lossless compressor.
//!
//! The final lossless stage is pluggable ([`BackendKind`]) and the pipeline
//! can be driven in two halves ([`encode_core`] + [`seal_with`]) so the
//! simulated BlueField C-Engine can take over exactly the stage the paper
//! offloads (Fig. 4: "PEDAL can execute DEFLATE using C-Engine to
//! accelerate SZ3").
//!
//! ```
//! use pedal_sz3::{compress, decompress, Field, Dims, Sz3Config};
//! let field = Field::<f32>::from_fn(Dims::d1(4096), |x, _, _| (x as f32 * 0.01).sin());
//! let cfg = Sz3Config::with_error_bound(1e-4);
//! let packed = compress(&field, &cfg);
//! let recon: Field<f32> = decompress(&packed).unwrap();
//! assert!(field.max_abs_diff(&recon) <= 1e-4);
//! ```

pub mod backend;
pub mod compressor;
pub mod field;
pub mod huff;
pub mod interp_nd;
pub mod metrics;
pub mod predictor;
pub mod quantizer;
pub mod select;
pub mod varint;

pub use backend::{
    backend_compress, backend_decompress, backend_decompress_with_limit, BackendError, BackendKind,
};
pub use compressor::{
    compress, compress_checked, core_limit_for_output, decode_core, decode_core_with_limit,
    decompress, decompress_with_limit, encode_core, seal, seal_with, unseal, unseal_limited,
    unseal_with, unseal_with_limit, CoreStats, Sz3Config, Sz3Error,
};
pub use field::{Dims, Field, Float};
pub use metrics::{quality, QualityReport};
pub use predictor::PredictorKind;
pub use quantizer::Quantizer;
pub use select::{compress_auto, select_predictor};
