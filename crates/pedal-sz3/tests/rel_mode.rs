//! Tests for the value-range-relative (REL) error-bound mode.

use pedal_sz3::{compress, decompress, quality, Dims, Field, Sz3Config};

fn field_with_range(scale: f64) -> Field<f64> {
    Field::from_fn(Dims::d1(20_000), |x, _, _| {
        scale * ((x as f64 * 0.003).sin() + 0.2 * (x as f64 * 0.011).cos())
    })
}

#[test]
fn rel_bound_scales_with_data_range() {
    let rel = 1e-3;
    for scale in [1.0f64, 100.0, 1e6] {
        let f = field_with_range(scale);
        let (lo, hi) = f.range();
        let cfg = Sz3Config::with_relative_bound(rel);
        let recon: Field<f64> = decompress(&compress(&f, &cfg)).unwrap();
        let q = quality(&f, &recon);
        let abs_eb = rel * (hi - lo);
        assert!(
            q.max_abs_error <= abs_eb * (1.0 + 1e-12),
            "scale {scale}: {} > {abs_eb}",
            q.max_abs_error
        );
        // The bound should actually be exploited (not trivially tiny).
        assert!(q.max_abs_error > abs_eb / 1e4, "scale {scale}: bound unused?");
    }
}

#[test]
fn rel_and_abs_agree_when_range_is_one() {
    // On data with range exactly 1.0 the two modes must behave identically.
    let f = Field::<f32>::from_fn(Dims::d1(10_000), |x, _, _| 0.5 + 0.5 * (x as f32 * 0.01).sin());
    let (lo, hi) = f.range();
    assert!((hi - lo - 1.0).abs() < 1e-6);
    let abs: Field<f32> = decompress(&compress(&f, &Sz3Config::with_error_bound(1e-4))).unwrap();
    let rel: Field<f32> = decompress(&compress(&f, &Sz3Config::with_relative_bound(1e-4))).unwrap();
    // Not necessarily bit-identical (range is float-computed), but the same
    // bound class.
    assert!(quality(&f, &abs).max_abs_error <= 1e-4 * 1.001);
    assert!(quality(&f, &rel).max_abs_error <= 1e-4 * (hi - lo) * 1.001);
}

#[test]
fn rel_mode_ratio_independent_of_scale() {
    // REL mode's whole point: scaling the data must not change the ratio.
    let rel = 1e-4;
    let small = compress(&field_with_range(1.0), &Sz3Config::with_relative_bound(rel));
    let large = compress(&field_with_range(1e8), &Sz3Config::with_relative_bound(rel));
    let r = small.len() as f64 / large.len() as f64;
    assert!((0.9..=1.1).contains(&r), "ratios diverged: {r:.3}");
}

#[test]
fn constant_data_compresses_trivially_in_rel_mode() {
    let f = Field::<f32>::new(Dims::d1(5_000), vec![42.0f32; 5_000]);
    let cfg = Sz3Config::with_relative_bound(1e-3);
    let packed = compress(&f, &cfg);
    let recon: Field<f32> = decompress(&packed).unwrap();
    assert_eq!(recon.data, f.data, "constant data reconstructs exactly");
    assert!(packed.len() < 200, "constant field should be tiny: {}", packed.len());
}
