//! Property-based verification of the SZ3 pipeline's core invariant: every
//! finite element of the reconstruction is within the absolute error bound,
//! for any data, any predictor, any backend, and both element types.

use pedal_sz3::{
    compress, decompress, BackendKind, Dims, Field, PredictorKind, Sz3Config,
};
use proptest::prelude::*;

fn check_f32(data: Vec<f32>, dims: Dims, eb: f64, predictor: PredictorKind, backend: BackendKind) {
    let field = Field::new(dims, data);
    let cfg = Sz3Config { error_bound: eb, predictor, backend, ..Default::default() };
    let sealed = compress(&field, &cfg);
    let recon: Field<f32> = decompress(&sealed).unwrap();
    for (i, (&a, &b)) in field.data.iter().zip(&recon.data).enumerate() {
        if a.is_finite() {
            assert!(
                ((a - b).abs() as f64) <= eb,
                "idx {i}: |{a} - {b}| > {eb} ({predictor:?}/{backend:?})"
            );
        } else {
            assert_eq!(a.to_bits(), b.to_bits(), "non-finite at {i} must be exact");
        }
    }
}

fn predictor_strategy() -> impl Strategy<Value = PredictorKind> {
    prop_oneof![
        Just(PredictorKind::Lorenzo),
        Just(PredictorKind::Interp),
        Just(PredictorKind::InterpCubic),
    ]
}

fn backend_strategy() -> impl Strategy<Value = BackendKind> {
    prop_oneof![
        Just(BackendKind::None),
        Just(BackendKind::Zs),
        Just(BackendKind::Deflate),
        Just(BackendKind::Lz4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bound_holds_1d_arbitrary_values(
        data in proptest::collection::vec(-1e6f32..1e6, 1..2000),
        eb in prop_oneof![Just(1e-4f64), Just(1e-2), Just(1.0)],
        predictor in predictor_strategy(),
        backend in backend_strategy(),
    ) {
        let dims = Dims::d1(data.len());
        check_f32(data, dims, eb, predictor, backend);
    }

    #[test]
    fn bound_holds_2d_lorenzo(
        nx in 1usize..40,
        ny in 1usize..40,
        seed in any::<u64>(),
        eb in prop_oneof![Just(1e-3f64), Just(0.5)],
    ) {
        let mut x = seed | 1;
        let field = Field::<f32>::from_fn(Dims::d2(nx, ny), |_, _, _| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            ((x >> 16) as f32 / 65536.0) * 100.0
        });
        check_f32(field.data.clone(), field.dims, eb, PredictorKind::Lorenzo, BackendKind::Zs);
    }

    #[test]
    fn bound_holds_smooth_3d(
        n in 2usize..12,
        scale in 0.1f64..100.0,
    ) {
        let field = Field::<f64>::from_fn(Dims::d3(n, n, n), |x, y, z| {
            scale * ((x as f64 * 0.4).sin() + (y as f64 * 0.3).cos() + z as f64 * 0.05)
        });
        let cfg = Sz3Config { error_bound: 1e-5, predictor: PredictorKind::Lorenzo, ..Default::default() };
        let sealed = compress(&field, &cfg);
        let recon: Field<f64> = decompress(&sealed).unwrap();
        prop_assert!(field.max_abs_diff(&recon) <= 1e-5);
    }

    #[test]
    fn special_values_roundtrip(
        mut data in proptest::collection::vec(-1e3f32..1e3, 16..256),
        nan_at in proptest::collection::vec(0usize..16, 0..4),
    ) {
        for &i in &nan_at {
            let idx = i % data.len();
            data[idx] = f32::NAN;
        }
        check_f32(data.clone(), Dims::d1(data.len()), 1e-4, PredictorKind::Interp, BackendKind::Deflate);
    }

    #[test]
    fn decompressor_never_panics_on_garbage(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress::<f32>(&junk);
        let _ = decompress::<f64>(&junk);
    }
}
