//! Seeded random verification of the SZ3 pipeline's core invariant: every
//! finite element of the reconstruction is within the absolute error bound,
//! for any data, any predictor, any backend, and both element types.
//! Ported from proptest to an in-tree fixed-seed case generator
//! (`--features fuzz` multiplies case counts).

use pedal_dpu::Pcg32;
use pedal_sz3::{compress, decompress, BackendKind, Dims, Field, PredictorKind, Sz3Config};

fn cases(base: usize) -> usize {
    if cfg!(feature = "fuzz") {
        base * 16
    } else {
        base
    }
}

const PREDICTORS: [PredictorKind; 3] =
    [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic];
const BACKENDS: [BackendKind; 4] =
    [BackendKind::None, BackendKind::Zs, BackendKind::Deflate, BackendKind::Lz4];

fn check_f32(data: Vec<f32>, dims: Dims, eb: f64, predictor: PredictorKind, backend: BackendKind) {
    let field = Field::new(dims, data);
    let cfg = Sz3Config { error_bound: eb, predictor, backend, ..Default::default() };
    let sealed = compress(&field, &cfg);
    let recon: Field<f32> = decompress(&sealed).unwrap();
    for (i, (&a, &b)) in field.data.iter().zip(&recon.data).enumerate() {
        if a.is_finite() {
            assert!(
                ((a - b).abs() as f64) <= eb,
                "idx {i}: |{a} - {b}| > {eb} ({predictor:?}/{backend:?})"
            );
        } else {
            assert_eq!(a.to_bits(), b.to_bits(), "non-finite at {i} must be exact");
        }
    }
}

#[test]
fn bound_holds_1d_arbitrary_values() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0001);
    for _ in 0..cases(24) {
        let data: Vec<f32> =
            (0..rng.gen_range(1usize..2000)).map(|_| rng.gen_range(-1e6f64..1e6) as f32).collect();
        let eb = [1e-4f64, 1e-2, 1.0][rng.gen_range(0usize..3)];
        let predictor = PREDICTORS[rng.gen_range(0usize..3)];
        let backend = BACKENDS[rng.gen_range(0usize..4)];
        let dims = Dims::d1(data.len());
        check_f32(data, dims, eb, predictor, backend);
    }
}

#[test]
fn bound_holds_2d_lorenzo() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0002);
    for _ in 0..cases(24) {
        let nx = rng.gen_range(1usize..40);
        let ny = rng.gen_range(1usize..40);
        let seed = rng.gen::<u64>();
        let eb = [1e-3f64, 0.5][rng.gen_range(0usize..2)];
        let mut x = seed | 1;
        let field = Field::<f32>::from_fn(Dims::d2(nx, ny), |_, _, _| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 16) as f32 / 65536.0) * 100.0
        });
        check_f32(field.data.clone(), field.dims, eb, PredictorKind::Lorenzo, BackendKind::Zs);
    }
}

#[test]
fn bound_holds_smooth_3d() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0003);
    for case in 0..cases(24) {
        let n = rng.gen_range(2usize..12);
        let scale = rng.gen_range(0.1f64..100.0);
        let field = Field::<f64>::from_fn(Dims::d3(n, n, n), |x, y, z| {
            scale * ((x as f64 * 0.4).sin() + (y as f64 * 0.3).cos() + z as f64 * 0.05)
        });
        let cfg = Sz3Config {
            error_bound: 1e-5,
            predictor: PredictorKind::Lorenzo,
            ..Default::default()
        };
        let sealed = compress(&field, &cfg);
        let recon: Field<f64> = decompress(&sealed).unwrap();
        assert!(field.max_abs_diff(&recon) <= 1e-5, "case {case}");
    }
}

#[test]
fn special_values_roundtrip() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0004);
    for _ in 0..cases(32) {
        let mut data: Vec<f32> =
            (0..rng.gen_range(16usize..256)).map(|_| rng.gen_range(-1e3f64..1e3) as f32).collect();
        for _ in 0..rng.gen_range(0usize..4) {
            let idx = rng.gen_range(0usize..16) % data.len();
            data[idx] = f32::NAN;
        }
        check_f32(
            data.clone(),
            Dims::d1(data.len()),
            1e-4,
            PredictorKind::Interp,
            BackendKind::Deflate,
        );
    }
}

#[test]
fn decompressor_never_panics_on_garbage() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0005);
    for _ in 0..cases(64) {
        let mut junk = vec![0u8; rng.gen_range(0usize..512)];
        rng.fill_bytes(&mut junk);
        let _ = decompress::<f32>(&junk);
        let _ = decompress::<f64>(&junk);
    }
}
