//! Hostile-input property coverage for the SZ3 pipeline, complementing
//! `proptest_error_bound.rs`: random fields through every predictor with
//! *continuously random* error bounds (not a fixed menu), non-finite data
//! salted in at random positions, and configurations the pipeline must
//! reject with a typed error rather than a panic.
//!
//! Same idiom as the rest of the repo: fixed Pcg32 seeds so every failure
//! reproduces, `--features fuzz` multiplies case counts.

use pedal_dpu::Pcg32;
use pedal_sz3::{
    compress, compress_checked, decompress, BackendKind, Dims, Field, PredictorKind, Sz3Config,
    Sz3Error,
};

fn cases(base: usize) -> usize {
    if cfg!(feature = "fuzz") {
        base * 16
    } else {
        base
    }
}

const PREDICTORS: [PredictorKind; 3] =
    [PredictorKind::Lorenzo, PredictorKind::Interp, PredictorKind::InterpCubic];
const BACKENDS: [BackendKind; 4] =
    [BackendKind::None, BackendKind::Zs, BackendKind::Deflate, BackendKind::Lz4];

/// Log-uniform error bound across seven decades, so the sweep exercises
/// quantizer scales a fixed menu would never hit.
fn random_eb(rng: &mut Pcg32) -> f64 {
    10f64.powf(rng.gen_range(-7.0f64..0.5))
}

#[test]
fn bound_holds_f32_all_predictors_random_eb() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0010);
    for case in 0..cases(36) {
        let predictor = PREDICTORS[case % 3];
        let backend = BACKENDS[rng.gen_range(0usize..4)];
        let eb = random_eb(&mut rng);
        let scale = 10f64.powf(rng.gen_range(-3.0f64..6.0));
        let data: Vec<f32> = (0..rng.gen_range(1usize..1500))
            .map(|_| (rng.gen_range(-1.0f64..1.0) * scale) as f32)
            .collect();
        let field = Field::new(Dims::d1(data.len()), data);
        let cfg = Sz3Config { error_bound: eb, predictor, backend, ..Default::default() };
        let sealed = compress_checked(&field, &cfg).unwrap();
        let recon: Field<f32> = decompress(&sealed).unwrap();
        for (i, (&a, &b)) in field.data.iter().zip(&recon.data).enumerate() {
            assert!(
                ((a - b).abs() as f64) <= eb,
                "case {case} idx {i}: |{a} - {b}| > {eb} ({predictor:?}/{backend:?})"
            );
        }
    }
}

#[test]
fn bound_holds_f64_all_predictors_random_eb() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0011);
    for case in 0..cases(24) {
        let predictor = PREDICTORS[case % 3];
        let eb = random_eb(&mut rng);
        let nx = rng.gen_range(2usize..24);
        let ny = rng.gen_range(1usize..24);
        let rough = rng.gen_range(0.0f64..1.0) < 0.5;
        let field = Field::<f64>::from_fn(Dims::d2(nx, ny), |x, y, _| {
            let smooth = (x as f64 * 0.3).sin() * 40.0 + y as f64 * 0.7;
            if rough {
                smooth + (((x * 31 + y * 17) % 13) as f64 - 6.0) * 5.0
            } else {
                smooth
            }
        });
        let cfg = Sz3Config { error_bound: eb, predictor, ..Default::default() };
        let sealed = compress_checked(&field, &cfg).unwrap();
        let recon: Field<f64> = decompress(&sealed).unwrap();
        assert!(
            field.max_abs_diff(&recon) <= eb,
            "case {case}: diff {} > {eb} ({predictor:?})",
            field.max_abs_diff(&recon)
        );
    }
}

#[test]
fn nan_and_inf_data_never_panic_and_are_bit_exact() {
    let mut rng = Pcg32::seed_from_u64(0x5233_0012);
    let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];
    for case in 0..cases(32) {
        let predictor = PREDICTORS[case % 3];
        let backend = BACKENDS[case % 4];
        let eb = random_eb(&mut rng);
        let mut data: Vec<f32> =
            (0..rng.gen_range(8usize..512)).map(|_| rng.gen_range(-1e4f64..1e4) as f32).collect();
        // Salt non-finite values into random positions — including runs,
        // which stress the predictors' neighbour reads hardest.
        for _ in 0..rng.gen_range(1usize..8) {
            let idx = rng.gen_range(0usize..data.len());
            data[idx] = specials[rng.gen_range(0usize..3)];
        }
        let field = Field::new(Dims::d1(data.len()), data);
        let cfg = Sz3Config { error_bound: eb, predictor, backend, ..Default::default() };
        let sealed = compress_checked(&field, &cfg).unwrap();
        let recon: Field<f32> = decompress(&sealed).unwrap();
        for (i, (&a, &b)) in field.data.iter().zip(&recon.data).enumerate() {
            if a.is_finite() {
                assert!(((a - b).abs() as f64) <= eb, "case {case} idx {i}: |{a} - {b}| > {eb}");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}: non-finite at {i}");
            }
        }
    }
}

#[test]
fn all_nan_field_roundtrips_in_both_bound_modes() {
    // Degenerate input: REL mode sees a zero (or NaN) value range and must
    // still produce a decodable stream with every element preserved.
    for cfg in [Sz3Config::with_error_bound(1e-3), Sz3Config::with_relative_bound(1e-3)] {
        let field = Field::<f64>::from_fn(Dims::d1(64), |_, _, _| f64::NAN);
        let sealed = compress(&field, &cfg);
        let recon: Field<f64> = decompress(&sealed).unwrap();
        assert!(recon.data.iter().all(|v| v.is_nan()));
    }
}

#[test]
fn bad_error_bounds_are_typed_errors_not_panics() {
    let field = Field::<f32>::from_fn(Dims::d1(32), |x, _, _| x as f32);
    for eb in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0, -1e300] {
        for cfg in [Sz3Config::with_error_bound(eb), Sz3Config::with_relative_bound(eb)] {
            assert!(
                matches!(compress_checked(&field, &cfg), Err(Sz3Error::BadConfig(_))),
                "eb {eb} must be rejected"
            );
        }
    }
    for radius in [i64::MIN, -1, 0, 1] {
        let cfg = Sz3Config { radius, ..Default::default() };
        assert!(
            matches!(compress_checked(&field, &cfg), Err(Sz3Error::BadConfig(_))),
            "radius {radius} must be rejected"
        );
    }
}
