//! Differential suite for the streaming tier (ISSUE satellite): the
//! wire bytes must be a pure function of `(data, codec, chunk_size)` —
//! never of how the input was sliced across writes — and the decoder
//! must reproduce the plaintext exactly even when fed one byte at a
//! time. The DEFLATE payload concatenation is additionally pinned to
//! `pedal_par::par_deflate` at the same chunk size.

use pedal_par::ParConfig;
use pedal_stream::{
    encode_all, frame_spans, Level, StreamCodec, StreamConfig, StreamDecoder, StreamEncoder,
};

/// Mixed compressible/incompressible bytes, deterministic.
fn sample(n: usize) -> Vec<u8> {
    let mut x = 0x853C_49E6_748F_EA9Bu64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 5 == 0 {
                (x & 0x3F) as u8
            } else {
                (i / 19) as u8
            }
        })
        .collect()
}

fn codecs() -> Vec<StreamCodec> {
    vec![
        StreamCodec::Deflate(Level::FAST),
        StreamCodec::Lz4 { accel: 1 },
        StreamCodec::Pco(pedal_stream::PcoConfig::default()),
    ]
}

fn encode_with_granularity(data: &[u8], cfg: &StreamConfig, gran: usize) -> Vec<u8> {
    let mut enc = StreamEncoder::new(cfg);
    let mut wire = Vec::new();
    if data.is_empty() {
        enc.push(data);
    } else {
        for piece in data.chunks(gran) {
            enc.push(piece);
            // Drain mid-stream like a real sender would.
            wire.extend_from_slice(&enc.take());
        }
    }
    wire.extend_from_slice(&enc.finish());
    wire
}

#[test]
fn write_granularity_never_changes_the_wire() {
    let data = sample(150_000);
    for codec in codecs() {
        for chunk in [997usize, 64 * 1024] {
            let cfg = StreamConfig::new(codec.clone()).with_chunk_size(chunk);
            let one_shot = encode_all(&data, &cfg);
            for gran in [1usize, 7, 4096, 1 << 20, data.len()] {
                let wire = encode_with_granularity(&data, &cfg, gran);
                assert_eq!(
                    wire,
                    one_shot,
                    "{} chunk={chunk} granularity={gran} changed the wire",
                    codec.name()
                );
            }
        }
    }
}

#[test]
fn byte_fed_decoder_reproduces_plaintext_exactly() {
    let data = sample(50_000);
    for codec in codecs() {
        let cfg = StreamConfig::new(codec.clone()).with_chunk_size(997);
        let wire = encode_all(&data, &cfg);
        let mut dec = StreamDecoder::new(data.len());
        let mut out = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b)).expect("valid stream");
            out.extend_from_slice(&dec.take());
        }
        assert!(dec.is_finished(), "{}", codec.name());
        assert_eq!(out, data, "{} byte-fed decode diverged", codec.name());
    }
}

/// Feed the decoder exactly one frame per `feed` call — the slicing the
/// granularity sweeps above never produce (byte-at-a-time always splits
/// frames; one-shot merges them). Boundary-aligned feeds are what a
/// length-prefixed transport delivers, and they exercise the "buffer is
/// empty, frame is complete" fast path: after every frame the decoder
/// must have nothing buffered and the plaintext so far must be a prefix
/// of the input.
#[test]
fn frame_boundary_aligned_feeds_reproduce_plaintext() {
    let data = sample(64_000);
    for codec in codecs() {
        for chunk in [997usize, 16 * 1024] {
            let cfg = StreamConfig::new(codec.clone()).with_chunk_size(chunk);
            let wire = encode_all(&data, &cfg);
            let (header_len, spans) = frame_spans(&wire).expect("scannable stream");
            // Frames tile the wire exactly: header, then back-to-back
            // frames, then the trailer (raw-length varint + Adler-32).
            let frames_end = spans.last().expect("at least one frame").end;
            assert_eq!(spans[0].start, header_len, "{}", codec.name());
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "{}: gap between frames", codec.name());
            }
            assert!(frames_end < wire.len(), "{}: missing trailer", codec.name());

            let mut dec = StreamDecoder::new(data.len());
            dec.feed(&wire[..header_len]).expect("header alone parses");
            assert!(!dec.is_finished(), "{}: finished before any frame", codec.name());
            let mut out = dec.take();
            for (k, s) in spans.iter().enumerate() {
                dec.feed(&wire[s.start..s.end]).expect("whole frame parses");
                out.extend_from_slice(&dec.take());
                assert_eq!(
                    dec.buffered_len(),
                    0,
                    "{} chunk={chunk}: leftover bytes after aligned frame {k}",
                    codec.name()
                );
                assert_eq!(dec.frames_decoded(), (k + 1) as u64, "{}", codec.name());
                assert_eq!(
                    &data[..out.len()],
                    &out[..],
                    "{} chunk={chunk}: prefix diverged after frame {k}",
                    codec.name()
                );
                assert_eq!(s.last, k == spans.len() - 1, "{}: LAST flag misplaced", codec.name());
            }
            // The trailer as its own aligned slice completes the stream.
            dec.feed(&wire[frames_end..]).expect("trailer parses");
            out.extend_from_slice(&dec.take());
            assert!(dec.is_finished(), "{}", codec.name());
            assert_eq!(out, data, "{} chunk={chunk}: aligned decode diverged", codec.name());
        }
    }
}

#[test]
fn edge_sizes_stay_granularity_independent() {
    for codec in codecs() {
        let cfg = StreamConfig::new(codec.clone()).with_chunk_size(256);
        // Empty, single byte, exactly one chunk, exact multiple, and
        // one-past-a-boundary.
        for n in [0usize, 1, 256, 1024, 1025] {
            let data = sample(n);
            let one_shot = encode_all(&data, &cfg);
            for gran in [1usize, 7, 300] {
                let wire = encode_with_granularity(&data, &cfg, gran);
                assert_eq!(wire, one_shot, "{} n={n} gran={gran}", codec.name());
            }
            let mut dec = StreamDecoder::new(n);
            for b in &one_shot {
                dec.feed(std::slice::from_ref(b)).unwrap();
            }
            assert_eq!(dec.finish().unwrap(), data, "{} n={n}", codec.name());
        }
    }
}

#[test]
fn encoder_works_through_std_io_write() {
    use std::io::Write;
    let data = sample(10_000);
    let cfg = StreamConfig::new(StreamCodec::Lz4 { accel: 1 }).with_chunk_size(512);
    let mut enc = StreamEncoder::new(&cfg);
    enc.write_all(&data).unwrap();
    enc.flush().unwrap();
    let mut wire = enc.take();
    // Rebuild a fresh encoder state around the already-taken prefix.
    let one_shot = encode_all(&data, &cfg);
    assert!(one_shot.starts_with(&wire));
    let mut enc2 = StreamEncoder::new(&cfg);
    enc2.write_all(&data).unwrap();
    let _ = enc2.take();
    wire.extend_from_slice(&enc2.finish());
    assert_eq!(wire, one_shot);
}

/// Parse the payload bytes out of every frame of a PSF1 stream.
fn frame_payloads(wire: &[u8]) -> Vec<Vec<u8>> {
    fn uvarint(b: &[u8], i: &mut usize) -> u64 {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = b[*i];
            *i += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return v;
            }
            shift += 7;
        }
    }
    let (_, spans) = frame_spans(wire).expect("scannable stream");
    spans
        .iter()
        .map(|s| {
            let f = &wire[s.start..s.end];
            let mut i = 1usize; // flags byte
            let _index = uvarint(f, &mut i);
            let _raw_len = uvarint(f, &mut i);
            let payload_len = uvarint(f, &mut i) as usize;
            i += 4; // payload Adler-32
            f[i..i + payload_len].to_vec()
        })
        .collect()
}

/// The generalization contract with pedal-par: concatenating the DEFLATE
/// frame payloads yields exactly `par_deflate` at the same chunk size —
/// one valid RFC 1951 stream, independent of worker count.
#[test]
fn deflate_payload_concat_matches_par_deflate() {
    let data = sample(200_000);
    let chunk = pedal_par::MIN_CHUNK; // 64 KiB, the smallest par chunk
    let cfg = StreamConfig::new(StreamCodec::Deflate(Level::DEFAULT)).with_chunk_size(chunk);
    let wire = encode_all(&data, &cfg);
    let concat: Vec<u8> = frame_payloads(&wire).concat();
    for workers in [1usize, 3] {
        let par = pedal_par::par_deflate(
            &data,
            Level::DEFAULT,
            &ParConfig::new(workers).with_chunk_size(chunk),
        );
        assert_eq!(concat, par, "workers={workers}");
    }
    // And the concatenation really is one whole DEFLATE stream.
    assert_eq!(pedal_deflate::decompress_with_limit(&concat, data.len()).unwrap(), data);
}

/// A sub-chunk message maps to a single final fragment — byte-identical
/// to the sequential parallel path with one chunk.
#[test]
fn single_chunk_deflate_matches_par_single_fragment() {
    let data = sample(10_000);
    let cfg = StreamConfig::new(StreamCodec::Deflate(Level::DEFAULT)).with_chunk_size(1 << 20);
    let payloads = frame_payloads(&encode_all(&data, &cfg));
    assert_eq!(payloads.len(), 1);
    let par = pedal_par::par_deflate(&data, Level::DEFAULT, &ParConfig::new(2));
    assert_eq!(payloads[0], par);
}
