//! Resumable PSF1 decoder: feed wire bytes at any granularity, drain
//! plaintext as frames complete.

use crate::frame::{
    max_payload_len, Cursor, StreamError, CODEC_DEFLATE, CODEC_LZ4, CODEC_PCO, FRAME_LAST,
    FRAME_RAW, MAGIC, MAX_CHUNK_SIZE, VERSION,
};
use pedal_zlib::{adler32, Adler32};

/// Decoder-side codec selector, recovered from the stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CodecKind {
    Deflate,
    Lz4,
    Pco,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Header,
    Frame,
    Trailer,
    Done,
}

/// Incremental decoder. [`feed`](Self::feed) accepts wire bytes one at a
/// time or a megabyte at a time — all validation happens at frame
/// granularity, and every structural defect is a clean [`StreamError`].
///
/// Buffering is bounded: at most one in-flight frame (header + payload,
/// itself bounded by the stream's declared chunk size) plus whatever
/// decoded plaintext the caller has not yet [`take`](Self::take)n.
pub struct StreamDecoder {
    limit: usize,
    buf: Vec<u8>,
    pos: usize,
    state: State,
    codec: CodecKind,
    chunk_size: usize,
    payload_bound: usize,
    next_index: u64,
    emitted: usize,
    adler: Adler32,
    ready: Vec<u8>,
}

impl StreamDecoder {
    /// `limit` caps total decoded plaintext — the decompression-bomb
    /// guard, enforced per frame before any payload is decoded.
    pub fn new(limit: usize) -> Self {
        Self {
            limit,
            buf: Vec::new(),
            pos: 0,
            state: State::Header,
            codec: CodecKind::Deflate,
            chunk_size: 0,
            payload_bound: 0,
            next_index: 0,
            emitted: 0,
            adler: Adler32::new(),
            ready: Vec::new(),
        }
    }

    /// Append wire bytes and decode as many complete frames as they
    /// finish. Errors are sticky only in the sense that the stream is
    /// corrupt — callers should stop feeding after an `Err`.
    pub fn feed(&mut self, data: &[u8]) -> Result<(), StreamError> {
        if self.state == State::Done {
            if data.is_empty() {
                return Ok(());
            }
            return Err(StreamError::TrailingBytes(data.len()));
        }
        self.buf.extend_from_slice(data);
        while self.step()? {}
        self.compact();
        if self.state == State::Done && self.pos < self.buf.len() {
            return Err(StreamError::TrailingBytes(self.buf.len() - self.pos));
        }
        Ok(())
    }

    /// Drain the plaintext decoded so far.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.ready)
    }

    /// True once the trailer has been verified.
    pub fn is_finished(&self) -> bool {
        self.state == State::Done
    }

    /// Total plaintext bytes decoded so far (including already-taken).
    pub fn decoded_len(&self) -> usize {
        self.emitted
    }

    /// Bytes currently buffered waiting for a frame to complete.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Frames fully decoded so far.
    pub fn frames_decoded(&self) -> u64 {
        self.next_index
    }

    /// Close the stream: errors with [`StreamError::Truncated`] unless
    /// the trailer was seen, otherwise returns the not-yet-taken
    /// plaintext.
    pub fn finish(self) -> Result<Vec<u8>, StreamError> {
        if self.state != State::Done {
            return Err(StreamError::Truncated);
        }
        Ok(self.ready)
    }

    /// One parsing step. `Ok(true)` means progress was made; `Ok(false)`
    /// means more input is needed.
    fn step(&mut self) -> Result<bool, StreamError> {
        match self.state {
            State::Header => self.step_header(),
            State::Frame => self.step_frame(),
            State::Trailer => self.step_trailer(),
            State::Done => Ok(false),
        }
    }

    fn step_header(&mut self) -> Result<bool, StreamError> {
        let mut c = Cursor::new(&self.buf[self.pos..]);
        let Some(magic) = c.bytes(4) else { return Ok(false) };
        if magic != MAGIC {
            return Err(StreamError::BadMagic);
        }
        let Some(version) = c.u8() else { return Ok(false) };
        if version != VERSION {
            return Err(StreamError::BadVersion(version));
        }
        let Some(codec_id) = c.u8() else { return Ok(false) };
        let codec = match codec_id {
            CODEC_DEFLATE => CodecKind::Deflate,
            CODEC_LZ4 => CodecKind::Lz4,
            CODEC_PCO => CodecKind::Pco,
            other => return Err(StreamError::UnknownCodec(other)),
        };
        let Some(hflags) = c.u8() else { return Ok(false) };
        if hflags != 0 {
            return Err(StreamError::ReservedFlags(hflags));
        }
        let Some(chunk_size) = c.uvarint()? else { return Ok(false) };
        if chunk_size == 0 || chunk_size > MAX_CHUNK_SIZE {
            return Err(StreamError::BadChunkSize(chunk_size));
        }
        self.codec = codec;
        self.chunk_size = chunk_size as usize;
        self.payload_bound = max_payload_len(self.chunk_size);
        self.pos += c.at;
        self.state = State::Frame;
        Ok(true)
    }

    fn step_frame(&mut self) -> Result<bool, StreamError> {
        let mut c = Cursor::new(&self.buf[self.pos..]);
        let Some(flags) = c.u8() else { return Ok(false) };
        if flags & !(FRAME_LAST | FRAME_RAW) != 0 {
            return Err(StreamError::ReservedFlags(flags));
        }
        let last = flags & FRAME_LAST != 0;
        let raw = flags & FRAME_RAW != 0;
        let Some(index) = c.uvarint()? else { return Ok(false) };
        if index != self.next_index {
            return Err(StreamError::FrameOutOfOrder { expected: self.next_index, got: index });
        }
        let Some(raw_len) = c.uvarint()? else { return Ok(false) };
        if raw_len > self.chunk_size as u64 {
            return Err(StreamError::RawLenTooLarge { raw_len, chunk_size: self.chunk_size });
        }
        let raw_len = raw_len as usize;
        if self.emitted.checked_add(raw_len).is_none_or(|t| t > self.limit) {
            return Err(StreamError::OutputLimitExceeded(self.limit));
        }
        let Some(payload_len) = c.uvarint()? else { return Ok(false) };
        if payload_len > self.payload_bound as u64 {
            return Err(StreamError::PayloadTooLarge { payload_len, bound: self.payload_bound });
        }
        let Some(sum) = c.u32le() else { return Ok(false) };
        let Some(payload) = c.bytes(payload_len as usize) else { return Ok(false) };
        if adler32(payload) != sum {
            return Err(StreamError::PayloadChecksum);
        }
        let decoded: Vec<u8> = if raw {
            if payload.len() != raw_len {
                return Err(StreamError::LengthMismatch { declared: raw_len, got: payload.len() });
            }
            payload.to_vec()
        } else {
            match self.codec {
                CodecKind::Deflate => {
                    let (bytes, saw_final) =
                        pedal_deflate::decompress_fragment_with_limit(payload, raw_len)?;
                    if saw_final != last {
                        return Err(StreamError::FinalFlagMismatch);
                    }
                    bytes
                }
                CodecKind::Lz4 => pedal_lz4::decompress_block(payload, Some(raw_len), raw_len)?,
                CodecKind::Pco => pedal_pco::decode_bytes_chunk(payload, raw_len)?,
            }
        };
        if decoded.len() != raw_len {
            return Err(StreamError::LengthMismatch { declared: raw_len, got: decoded.len() });
        }
        self.adler.update(&decoded);
        self.ready.extend_from_slice(&decoded);
        self.emitted += raw_len;
        self.next_index += 1;
        self.pos += c.at;
        self.state = if last { State::Trailer } else { State::Frame };
        Ok(true)
    }

    fn step_trailer(&mut self) -> Result<bool, StreamError> {
        let mut c = Cursor::new(&self.buf[self.pos..]);
        let Some(total) = c.uvarint()? else { return Ok(false) };
        if total != self.emitted as u64 {
            return Err(StreamError::TotalMismatch {
                declared: total,
                decoded: self.emitted as u64,
            });
        }
        let Some(sum) = c.u32le() else { return Ok(false) };
        if sum != self.adler.finish() {
            return Err(StreamError::StreamChecksum);
        }
        self.pos += c.at;
        self.state = State::Done;
        Ok(true)
    }

    /// Drop consumed bytes once they dominate the buffer, keeping
    /// in-flight buffering proportional to one frame.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// One-shot convenience: decode a complete PSF1 stream with an output
/// budget.
pub fn decode_all(stream: &[u8], limit: usize) -> Result<Vec<u8>, StreamError> {
    let mut dec = StreamDecoder::new(limit);
    dec.feed(stream)?;
    dec.finish()
}
