//! Incremental PSF1 encoder: buffer at most one chunk, emit frames as
//! soon as a chunk is provably not the stream's last.

use crate::frame::{
    put_uvarint, CODEC_DEFLATE, CODEC_LZ4, CODEC_PCO, FRAME_LAST, FRAME_RAW, MAGIC, MAX_CHUNK_SIZE,
    VERSION,
};
use pedal_deflate::Level;
use pedal_pco::PcoConfig;
use pedal_zlib::{adler32, Adler32};

/// Default streaming chunk: 1 MiB, matching `pedal-par`'s default shard.
pub const DEFAULT_CHUNK: usize = 1 << 20;

/// Which codec fills the frame payloads, with its encoder-side knobs.
/// The knobs never reach the wire — a decoder needs only the codec id.
#[derive(Debug, Clone)]
pub enum StreamCodec {
    /// Sync-flush DEFLATE fragments; concatenated payloads form one
    /// valid RFC 1951 stream (byte-identical to `pedal_par::par_deflate`
    /// at the same chunk size).
    Deflate(Level),
    /// Independent LZ4 blocks, raw-stored when compression expands.
    Lz4 {
        /// Acceleration factor, as in `pedal_lz4::compress_block`.
        accel: u32,
    },
    /// pco bytes-mode chunks, raw-stored when compression expands.
    Pco(PcoConfig),
}

impl StreamCodec {
    /// Wire codec id for the stream header.
    pub fn id(&self) -> u8 {
        match self {
            StreamCodec::Deflate(_) => CODEC_DEFLATE,
            StreamCodec::Lz4 { .. } => CODEC_LZ4,
            StreamCodec::Pco(_) => CODEC_PCO,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            StreamCodec::Deflate(_) => "deflate",
            StreamCodec::Lz4 { .. } => "lz4",
            StreamCodec::Pco(_) => "pco",
        }
    }
}

/// Encoder configuration: codec plus the plaintext chunk size each frame
/// carries. Output bytes are a pure function of `(data, codec,
/// chunk_size)` — never of how the input was sliced across writes.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    pub codec: StreamCodec,
    pub chunk_size: usize,
}

impl StreamConfig {
    pub fn new(codec: StreamCodec) -> Self {
        Self { codec, chunk_size: DEFAULT_CHUNK }
    }

    /// Override the chunk size (clamped to `1..=MAX_CHUNK_SIZE`).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.clamp(1, MAX_CHUNK_SIZE as usize);
        self
    }
}

/// Encoder-side tallies of one finished stream, for throughput and
/// ratio reporting without re-parsing the wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderStats {
    /// Frames emitted (including the final, possibly empty, LAST frame).
    pub frames: u64,
    /// Frames stored raw because the codec output would have expanded.
    pub raw_frames: u64,
    /// Plaintext bytes consumed.
    pub raw_bytes: u64,
    /// Complete wire size: header + every frame + trailer.
    pub wire_bytes: u64,
}

impl EncoderStats {
    /// Plaintext over wire bytes (0.0 for an empty stream).
    pub fn ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 0.0;
        }
        self.raw_bytes as f64 / self.wire_bytes as f64
    }
}

/// Incremental encoder. Feed plaintext with [`push`](Self::push) (or via
/// `std::io::Write`), drain wire bytes with [`take`](Self::take), close
/// with [`finish`](Self::finish).
///
/// A full chunk is emitted only once at least one later byte exists, so
/// the final frame always carries between 1 and `chunk_size` plaintext
/// bytes (0 only for an empty stream) — an exact chunk-multiple input
/// marks its last full chunk as the final frame instead of appending an
/// empty one, which is what keeps the concatenated DEFLATE payloads
/// byte-identical to the one-shot path.
pub struct StreamEncoder {
    codec: StreamCodec,
    chunk: usize,
    pending: Vec<u8>,
    ready: Vec<u8>,
    next_index: u64,
    total_raw: u64,
    raw_frames: u64,
    wire_out: u64,
    adler: Adler32,
    finished: bool,
}

impl StreamEncoder {
    pub fn new(cfg: &StreamConfig) -> Self {
        let chunk = cfg.chunk_size.clamp(1, MAX_CHUNK_SIZE as usize);
        let mut ready = Vec::with_capacity(16);
        ready.extend_from_slice(&MAGIC);
        ready.push(VERSION);
        ready.push(cfg.codec.id());
        ready.push(0); // header flags, reserved
        put_uvarint(&mut ready, chunk as u64);
        let wire_out = ready.len() as u64;
        Self {
            codec: cfg.codec.clone(),
            chunk,
            pending: Vec::new(),
            ready,
            next_index: 0,
            total_raw: 0,
            raw_frames: 0,
            wire_out,
            adler: Adler32::new(),
            finished: false,
        }
    }

    /// Append plaintext. Consumes directly from `data`, so a large write
    /// still buffers at most one chunk of pending plaintext.
    pub fn push(&mut self, mut data: &[u8]) {
        assert!(!self.finished, "push after finish");
        while self.pending.len() + data.len() > self.chunk {
            if self.pending.is_empty() {
                let (head, rest) = data.split_at(self.chunk);
                data = rest;
                self.emit_frame(head, false);
            } else {
                let need = self.chunk - self.pending.len();
                let (head, rest) = data.split_at(need);
                data = rest;
                self.pending.extend_from_slice(head);
                let full = std::mem::take(&mut self.pending);
                self.emit_frame(&full, false);
                self.pending = full;
                self.pending.clear();
            }
        }
        self.pending.extend_from_slice(data);
    }

    /// Drain every wire byte produced so far (header, then frames as
    /// they complete). Safe to call at any granularity; the
    /// concatenation of all takes plus [`finish`](Self::finish) is the
    /// complete stream.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.ready)
    }

    /// Bytes of buffered plaintext not yet emitted as a frame (< one
    /// chunk by construction, plus the current chunk remainder).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Bytes of encoded output waiting to be taken.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.next_index
    }

    /// Frames stored raw so far (codec output would have expanded).
    pub fn raw_frames(&self) -> u64 {
        self.raw_frames
    }

    /// Emit the final frame and trailer; returns all not-yet-taken wire
    /// bytes.
    pub fn finish(self) -> Vec<u8> {
        self.finish_with_stats().0
    }

    /// [`finish`](Self::finish) plus the stream's encoder-side tallies.
    /// `wire_bytes` counts the whole stream, including bytes already
    /// drained through [`take`](Self::take).
    pub fn finish_with_stats(mut self) -> (Vec<u8>, EncoderStats) {
        let tail = std::mem::take(&mut self.pending);
        self.emit_frame(&tail, true);
        let before = self.ready.len();
        put_uvarint(&mut self.ready, self.total_raw);
        let sum = self.adler.finish();
        self.ready.extend_from_slice(&sum.to_le_bytes());
        self.wire_out += (self.ready.len() - before) as u64;
        self.finished = true;
        let stats = EncoderStats {
            frames: self.next_index,
            raw_frames: self.raw_frames,
            raw_bytes: self.total_raw,
            wire_bytes: self.wire_out,
        };
        (self.ready, stats)
    }

    fn emit_frame(&mut self, chunk: &[u8], last: bool) {
        let (payload, raw) = match &self.codec {
            StreamCodec::Deflate(level) => {
                (pedal_deflate::compress_fragment(chunk, *level, last), false)
            }
            StreamCodec::Lz4 { accel } => {
                let p = pedal_lz4::compress_block(chunk, *accel);
                if p.len() >= chunk.len() {
                    (chunk.to_vec(), true)
                } else {
                    (p, false)
                }
            }
            StreamCodec::Pco(cfg) => {
                let p = pedal_pco::encode_bytes_chunk(chunk, cfg);
                if p.len() >= chunk.len() {
                    (chunk.to_vec(), true)
                } else {
                    (p, false)
                }
            }
        };
        let mut flags = 0u8;
        if last {
            flags |= FRAME_LAST;
        }
        if raw {
            flags |= FRAME_RAW;
        }
        let before = self.ready.len();
        self.ready.push(flags);
        put_uvarint(&mut self.ready, self.next_index);
        put_uvarint(&mut self.ready, chunk.len() as u64);
        put_uvarint(&mut self.ready, payload.len() as u64);
        self.ready.extend_from_slice(&adler32(&payload).to_le_bytes());
        self.ready.extend_from_slice(&payload);
        self.wire_out += (self.ready.len() - before) as u64;
        if raw {
            self.raw_frames += 1;
        }
        self.adler.update(chunk);
        self.total_raw += chunk.len() as u64;
        self.next_index += 1;
    }
}

impl std::io::Write for StreamEncoder {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.push(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        // Frame boundaries are fixed by the chunk size; there is no
        // partial-frame flush in the format, so this is a no-op.
        Ok(())
    }
}

/// One-shot convenience: encode `data` as a complete PSF1 stream.
pub fn encode_all(data: &[u8], cfg: &StreamConfig) -> Vec<u8> {
    let mut enc = StreamEncoder::new(cfg);
    enc.push(data);
    enc.finish()
}
