//! # pedal-stream
//!
//! Incremental streaming codec tier: a `Write`-style encoder and a
//! resumable decoder over the self-describing **PSF1** frame protocol,
//! generalizing `pedal-par`'s sync-flush DEFLATE fragments so the wire
//! never waits on the codec.
//!
//! A PSF1 stream is a header, a run of self-describing frames (flags +
//! sequential index + lengths + payload checksum + payload), and a
//! trailer carrying the plaintext length and whole-stream Adler-32.
//! Three codecs fill the payloads:
//!
//! * **DEFLATE** — sync-flush fragments; concatenating the payloads
//!   yields one valid RFC 1951 stream, byte-identical to
//!   `pedal_par::par_deflate` at the same chunk size,
//! * **LZ4** — independent blocks with a raw-stored fallback,
//! * **pco** — bytes-mode chunks with the same fallback.
//!
//! The contract that makes streaming safe to deploy anywhere in the
//! pipeline: encoder output is a pure function of `(data, codec,
//! chunk_size)` — independent of write granularity — and the decoder
//! accepts any feed granularity down to one byte, with bounded
//! buffering and every failure a clean [`StreamError`].
//!
//! ```
//! use pedal_stream::{decode_all, StreamCodec, StreamConfig, StreamDecoder, StreamEncoder};
//!
//! let data = b"overlap the wire with the codec ".repeat(1000);
//! let cfg = StreamConfig::new(StreamCodec::Deflate(pedal_deflate::Level::DEFAULT))
//!     .with_chunk_size(4096);
//!
//! // Incremental encode, drained mid-stream like a sender would.
//! let mut enc = StreamEncoder::new(&cfg);
//! let mut wire = Vec::new();
//! for piece in data.chunks(1000) {
//!     enc.push(piece);
//!     wire.extend_from_slice(&enc.take());
//! }
//! wire.extend_from_slice(&enc.finish());
//!
//! // Incremental decode, fed as the frames "arrive".
//! let mut dec = StreamDecoder::new(data.len());
//! for piece in wire.chunks(512) {
//!     dec.feed(piece).unwrap();
//! }
//! assert_eq!(dec.finish().unwrap(), data);
//! assert_eq!(decode_all(&wire, data.len()).unwrap(), data);
//! ```

mod decoder;
mod encoder;
mod frame;

pub use pedal_deflate::Level;
pub use pedal_pco::PcoConfig;

pub use decoder::{decode_all, StreamDecoder};
pub use encoder::{
    encode_all, EncoderStats, StreamCodec, StreamConfig, StreamEncoder, DEFAULT_CHUNK,
};
pub use frame::{
    frame_spans, max_payload_len, FrameSpan, StreamError, CODEC_DEFLATE, CODEC_LZ4, CODEC_PCO,
    FRAME_LAST, FRAME_RAW, MAGIC, MAX_CHUNK_SIZE, VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use pedal_deflate::Level;

    fn configs(chunk: usize) -> Vec<StreamConfig> {
        vec![
            StreamConfig::new(StreamCodec::Deflate(Level::DEFAULT)).with_chunk_size(chunk),
            StreamConfig::new(StreamCodec::Lz4 { accel: 1 }).with_chunk_size(chunk),
            StreamConfig::new(StreamCodec::Pco(pedal_pco::PcoConfig::default()))
                .with_chunk_size(chunk),
        ]
    }

    fn sample(n: usize) -> Vec<u8> {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 3 == 0 {
                    (x & 0x0F) as u8
                } else {
                    (i / 7) as u8
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_all_codecs_and_edges() {
        for cfg in configs(256) {
            for n in [0usize, 1, 255, 256, 257, 512, 4096, 5000] {
                let data = sample(n);
                let wire = encode_all(&data, &cfg);
                let back = decode_all(&wire, n).expect("valid stream decodes");
                assert_eq!(back, data, "{} n={n}", cfg.codec.name());
            }
        }
    }

    #[test]
    fn exact_chunk_multiple_has_no_empty_final_frame() {
        for cfg in configs(256) {
            let data = sample(1024); // exactly 4 chunks
            let wire = encode_all(&data, &cfg);
            let (_, spans) = frame_spans(&wire).expect("scannable");
            assert_eq!(spans.len(), 4, "{}", cfg.codec.name());
            assert!(spans[3].last);
        }
    }

    #[test]
    fn decoder_detects_reordered_frames() {
        let cfg = &configs(128)[0];
        let data = sample(1000);
        let wire = encode_all(&data, cfg);
        let (header_len, spans) = frame_spans(&wire).unwrap();
        assert!(spans.len() >= 3);
        let mut swapped = wire[..header_len].to_vec();
        swapped.extend_from_slice(&wire[spans[1].start..spans[1].end]);
        swapped.extend_from_slice(&wire[spans[0].start..spans[0].end]);
        swapped.extend_from_slice(&wire[spans[1].end..]);
        let err = decode_all(&swapped, data.len()).unwrap_err();
        assert!(matches!(err, StreamError::FrameOutOfOrder { expected: 0, got: 1 }), "{err}");
    }

    #[test]
    fn decoder_detects_truncation_and_corruption() {
        for cfg in configs(200) {
            let data = sample(900);
            let wire = encode_all(&data, &cfg);
            // Truncation at every prefix either stays pending or errors;
            // finish() on a pending decoder is Truncated.
            for cut in [0, 1, 7, wire.len() / 2, wire.len() - 1] {
                let mut dec = StreamDecoder::new(data.len());
                // A feed error is fine too: corrupt-by-truncation is clean.
                if dec.feed(&wire[..cut]).is_ok() {
                    assert!(!dec.is_finished());
                    assert_eq!(dec.finish().unwrap_err(), StreamError::Truncated);
                }
            }
            // Flipping a payload byte must trip the frame checksum.
            let (header_len, spans) = frame_spans(&wire).unwrap();
            let mid = spans[0].end - 1;
            assert!(mid > header_len);
            let mut bad = wire.clone();
            bad[mid] ^= 0x40;
            assert!(decode_all(&bad, data.len()).is_err(), "{}", cfg.codec.name());
        }
    }

    #[test]
    fn output_limit_enforced_before_decode() {
        let cfg = &configs(256)[1];
        let data = sample(2000);
        let wire = encode_all(&data, cfg);
        let err = decode_all(&wire, 100).unwrap_err();
        assert_eq!(err, StreamError::OutputLimitExceeded(100));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let cfg = &configs(256)[0];
        let wire = encode_all(&sample(100), cfg);
        let mut extra = wire.clone();
        extra.push(0);
        assert!(matches!(decode_all(&extra, 100).unwrap_err(), StreamError::TrailingBytes(1)));
    }

    #[test]
    fn encoder_stats_count_frames_raw_fallbacks_and_wire_bytes() {
        let cfg = StreamConfig::new(StreamCodec::Lz4 { accel: 1 }).with_chunk_size(256);
        // Pure noise: LZ4 expands every chunk, so each frame raw-stores.
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let noise: Vec<u8> = (0..1024)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let mut enc = StreamEncoder::new(&cfg);
        enc.push(&noise);
        let mut wire = enc.take();
        let (tail, stats) = enc.finish_with_stats();
        wire.extend_from_slice(&tail);
        // wire_bytes covers the whole stream, including drained takes.
        assert_eq!(stats.wire_bytes as usize, wire.len());
        assert_eq!(wire, encode_all(&noise, &cfg));
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.raw_bytes, 1024);
        assert!(stats.raw_frames > 0, "noise should force raw fallback");
        assert!(stats.ratio() < 1.0, "raw-stored noise pays framing overhead");
        // Compressible input: no fallbacks, ratio above 1.
        let mut e = StreamEncoder::new(&cfg);
        e.push(&vec![0u8; 4096]);
        let (_, s2) = e.finish_with_stats();
        assert_eq!(s2.raw_frames, 0);
        assert!(s2.ratio() > 1.0);
    }

    #[test]
    fn decoder_buffering_stays_bounded() {
        let cfg = StreamConfig::new(StreamCodec::Lz4 { accel: 1 }).with_chunk_size(1024);
        let data = sample(64 * 1024);
        let wire = encode_all(&data, &cfg);
        let mut dec = StreamDecoder::new(data.len());
        let mut peak = 0usize;
        for piece in wire.chunks(97) {
            dec.feed(piece).unwrap();
            dec.take();
            peak = peak.max(dec.buffered_len());
        }
        assert!(dec.is_finished());
        // One frame of a 1 KiB chunk plus header slop, never the stream.
        assert!(peak < 2 * 1024 + 256, "peak buffered {peak}");
    }
}
