//! The PSF1 wire format: stream header, frame headers, trailer.
//!
//! Layout (all multi-byte integers little-endian, varints LEB128):
//!
//! ```text
//! stream  := header frame* trailer
//! header  := "PSF1" version:u8 codec:u8 flags:u8 chunk_size:uvarint
//! frame   := flags:u8 index:uvarint raw_len:uvarint payload_len:uvarint
//!            payload_adler:u32le payload
//! trailer := total_raw:uvarint stream_adler:u32le
//! ```
//!
//! Frame `flags` bit 0 marks the stream's final frame, bit 1 marks a raw
//! (stored) payload; all other bits are reserved and must be zero. Frame
//! indices are strictly sequential from zero so a reordered or replayed
//! frame is detected before its payload is decoded. `payload_adler`
//! covers the compressed payload (cheap per-frame integrity);
//! `stream_adler` covers the whole plaintext.

/// Stream magic: "PSF1" (Pedal Streaming Frames, version family 1).
pub const MAGIC: [u8; 4] = *b"PSF1";
/// Format version carried in the header.
pub const VERSION: u8 = 1;

/// Codec id: sync-flush DEFLATE fragments (`pedal-deflate`).
pub const CODEC_DEFLATE: u8 = 1;
/// Codec id: independent LZ4 blocks (`pedal-lz4`).
pub const CODEC_LZ4: u8 = 2;
/// Codec id: pco bytes-mode chunks (`pedal-pco`).
pub const CODEC_PCO: u8 = 3;

/// Frame flag: this is the stream's final frame; the trailer follows.
pub const FRAME_LAST: u8 = 0b0000_0001;
/// Frame flag: the payload is the chunk's raw bytes (codec bypassed
/// because compression would have expanded the chunk).
pub const FRAME_RAW: u8 = 0b0000_0010;

/// Largest chunk size a decoder will accept from a stream header. Caps
/// per-frame buffering on hostile input; far above any sane chunking.
pub const MAX_CHUNK_SIZE: u64 = 1 << 30;

/// Everything that can go wrong while decoding a PSF1 stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The stream does not start with "PSF1".
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown codec id in the stream header.
    UnknownCodec(u8),
    /// Reserved header or frame flag bits were set.
    ReservedFlags(u8),
    /// Declared chunk size is zero or exceeds [`MAX_CHUNK_SIZE`].
    BadChunkSize(u64),
    /// A varint ran past 10 bytes without terminating.
    VarintOverflow,
    /// Frame index does not match the expected sequence position.
    FrameOutOfOrder { expected: u64, got: u64 },
    /// A frame declared more plaintext than the stream's chunk size.
    RawLenTooLarge { raw_len: u64, chunk_size: usize },
    /// A frame declared a payload larger than the compressed-size bound
    /// for the stream's chunk size.
    PayloadTooLarge { payload_len: u64, bound: usize },
    /// Per-frame payload checksum mismatch.
    PayloadChecksum,
    /// A DEFLATE payload's final-block marker disagreed with the frame's
    /// last-frame flag.
    FinalFlagMismatch,
    /// Decoded frame length differs from the declared `raw_len`.
    LengthMismatch { declared: usize, got: usize },
    /// Trailer's total plaintext length disagrees with what was decoded.
    TotalMismatch { declared: u64, decoded: u64 },
    /// Whole-plaintext Adler-32 in the trailer does not match.
    StreamChecksum,
    /// Decoding would exceed the caller's output budget.
    OutputLimitExceeded(usize),
    /// Bytes arrived after the trailer completed the stream.
    TrailingBytes(usize),
    /// The stream ended before the trailer (decoder still mid-stream).
    Truncated,
    /// The inner codec rejected a frame payload.
    Codec(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::BadMagic => write!(f, "bad PSF1 magic"),
            StreamError::BadVersion(v) => write!(f, "unsupported PSF1 version {v}"),
            StreamError::UnknownCodec(c) => write!(f, "unknown stream codec id {c}"),
            StreamError::ReservedFlags(b) => write!(f, "reserved flag bits set: {b:#04x}"),
            StreamError::BadChunkSize(n) => write!(f, "invalid chunk size {n}"),
            StreamError::VarintOverflow => write!(f, "varint exceeds 10 bytes"),
            StreamError::FrameOutOfOrder { expected, got } => {
                write!(f, "frame index {got} out of order (expected {expected})")
            }
            StreamError::RawLenTooLarge { raw_len, chunk_size } => {
                write!(f, "frame raw length {raw_len} exceeds chunk size {chunk_size}")
            }
            StreamError::PayloadTooLarge { payload_len, bound } => {
                write!(f, "frame payload {payload_len} exceeds bound {bound}")
            }
            StreamError::PayloadChecksum => write!(f, "frame payload checksum mismatch"),
            StreamError::FinalFlagMismatch => {
                write!(f, "deflate final-block marker disagrees with frame flags")
            }
            StreamError::LengthMismatch { declared, got } => {
                write!(f, "frame decoded to {got} bytes, declared {declared}")
            }
            StreamError::TotalMismatch { declared, decoded } => {
                write!(f, "trailer declares {declared} bytes, decoded {decoded}")
            }
            StreamError::StreamChecksum => write!(f, "stream checksum mismatch"),
            StreamError::OutputLimitExceeded(n) => {
                write!(f, "output exceeds limit of {n} bytes")
            }
            StreamError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the stream trailer")
            }
            StreamError::Truncated => write!(f, "stream truncated before trailer"),
            StreamError::Codec(e) => write!(f, "frame payload rejected: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<pedal_deflate::InflateError> for StreamError {
    fn from(e: pedal_deflate::InflateError) -> Self {
        StreamError::Codec(e.to_string())
    }
}

impl From<pedal_lz4::Lz4Error> for StreamError {
    fn from(e: pedal_lz4::Lz4Error) -> Self {
        StreamError::Codec(e.to_string())
    }
}

impl From<pedal_pco::PcoError> for StreamError {
    fn from(e: pedal_pco::PcoError) -> Self {
        StreamError::Codec(e.to_string())
    }
}

/// Upper bound on a frame payload for a given chunk size: the DEFLATE
/// stored-block worst case dominates (LZ4 and pco frames fall back to
/// [`FRAME_RAW`], capping them at the chunk size itself).
pub fn max_payload_len(chunk_size: usize) -> usize {
    pedal_deflate::max_compressed_len(chunk_size)
}

/// Append `v` as a LEB128 varint.
pub(crate) fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Incremental reader over a byte slice. Every accessor returns
/// `Ok(None)` when the slice is too short — the signal that a streaming
/// decoder must wait for more input — and only errors on structurally
/// invalid bytes.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pub at: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    pub fn u32le(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(b)
    }

    pub fn uvarint(&mut self) -> Result<Option<u64>, StreamError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        for i in 0.. {
            let Some(&b) = self.buf.get(self.at + i) else {
                return Ok(None);
            };
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(StreamError::VarintOverflow);
            }
            v |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                self.at += i + 1;
                return Ok(Some(v));
            }
            shift += 7;
        }
        unreachable!("loop returns")
    }
}

/// Byte range of one frame in an encoded stream, for structure-aware
/// mutation (`pedal-testkit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Offset of the frame's flags byte.
    pub start: usize,
    /// One past the last payload byte.
    pub end: usize,
    /// Whether the frame carries [`FRAME_LAST`].
    pub last: bool,
}

/// Best-effort structural scan of a PSF1 stream: the header length and
/// the spans of every complete frame. Stops at the first malformed or
/// truncated frame (returning what was parsed so far) and returns `None`
/// when the header itself is absent or invalid. Never decodes payloads,
/// never verifies checksums — this exists so mutators can cut on frame
/// boundaries, not to validate streams.
pub fn frame_spans(stream: &[u8]) -> Option<(usize, Vec<FrameSpan>)> {
    let mut c = Cursor::new(stream);
    if c.bytes(4)? != MAGIC || c.u8()? != VERSION {
        return None;
    }
    let codec = c.u8()?;
    if !(CODEC_DEFLATE..=CODEC_PCO).contains(&codec) {
        return None;
    }
    c.u8()?; // header flags
    c.uvarint().ok().flatten()?;
    let header_len = c.at;
    let mut spans = Vec::new();
    loop {
        let start = c.at;
        let Some(flags) = c.u8() else { break };
        let (Ok(Some(_index)), Ok(Some(_raw_len)), Ok(Some(payload_len))) =
            (c.uvarint(), c.uvarint(), c.uvarint())
        else {
            break;
        };
        if c.u32le().is_none() || c.bytes(payload_len.min(usize::MAX as u64) as usize).is_none() {
            break;
        }
        let last = flags & FRAME_LAST != 0;
        spans.push(FrameSpan { start, end: c.at, last });
        if last {
            break;
        }
    }
    Some((header_len, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_bounds() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.uvarint().unwrap(), Some(v));
            assert_eq!(c.at, buf.len());
        }
        // Truncated varint: need more, not an error.
        let mut c = Cursor::new(&[0x80, 0x80]);
        assert_eq!(c.uvarint().unwrap(), None);
        // Non-terminating varint: overflow.
        let mut c = Cursor::new(&[0xFF; 11]);
        assert!(matches!(c.uvarint(), Err(StreamError::VarintOverflow)));
    }

    #[test]
    fn frame_spans_rejects_non_psf1() {
        assert!(frame_spans(b"").is_none());
        assert!(frame_spans(b"PSF2aaaaaaaa").is_none());
        assert!(frame_spans(&[0u8; 64]).is_none());
    }
}
