//! Canonical Huffman coding: length-limited code construction from symbol
//! frequencies, canonical code assignment (RFC 1951 §3.2.2), and a
//! table-driven decoder.

use crate::bitio::{reverse_bits, BitReader, OutOfBits};

/// Build length-limited Huffman code lengths from frequencies.
///
/// Returns a `Vec<u8>` of code lengths (0 for unused symbols). Uses a
/// standard Huffman tree followed by the depth-limiting adjustment used by
/// zlib/miniz: over-long codes are clamped to `max_len` and the Kraft sum is
/// repaired by demoting the shallowest eligible codes.
pub fn build_code_lengths(freqs: &[u32], max_len: usize) -> Vec<u8> {
    assert!(max_len <= 32);
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match used.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs a 1-bit code so the decoder can
            // distinguish it from garbage.
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-free O(n log n) Huffman: sort leaves by frequency, then do the
    // classic two-queue merge (sorted leaves + FIFO of internal nodes).
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        // Index into `nodes` of children, or usize::MAX for leaves.
        left: usize,
        right: usize,
        sym: usize,
    }
    let mut leaves: Vec<usize> = used.clone();
    leaves.sort_by_key(|&s| (freqs[s], s));
    let mut nodes: Vec<Node> = leaves
        .iter()
        .map(|&s| Node { freq: freqs[s] as u64, left: usize::MAX, right: usize::MAX, sym: s })
        .collect();
    let mut leaf_i = 0usize; // next unconsumed leaf in nodes[0..leaves.len()]
    let num_leaves = nodes.len();
    let mut internal: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    let take_min = |nodes: &Vec<Node>,
                    leaf_i: &mut usize,
                    internal: &mut std::collections::VecDeque<usize>|
     -> usize {
        let leaf_ok = *leaf_i < num_leaves;
        let int_ok = !internal.is_empty();
        let pick_leaf = match (leaf_ok, int_ok) {
            (true, true) => nodes[*leaf_i].freq <= nodes[*internal.front().unwrap()].freq,
            (true, false) => true,
            (false, true) => false,
            (false, false) => unreachable!("huffman merge ran out of nodes"),
        };
        if pick_leaf {
            let i = *leaf_i;
            *leaf_i += 1;
            i
        } else {
            internal.pop_front().unwrap()
        }
    };

    let mut remaining = num_leaves;
    while remaining > 1 {
        let a = take_min(&nodes, &mut leaf_i, &mut internal);
        let b = take_min(&nodes, &mut leaf_i, &mut internal);
        let parent =
            Node { freq: nodes[a].freq + nodes[b].freq, left: a, right: b, sym: usize::MAX };
        nodes.push(parent);
        internal.push_back(nodes.len() - 1);
        remaining -= 1;
    }
    let root = internal.pop_front().unwrap();

    // Depth-first traversal to collect natural depths.
    let mut depth_count = vec![0u32; 64];
    let mut sym_depth: Vec<(usize, u32)> = Vec::with_capacity(num_leaves);
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, d)) = stack.pop() {
        let node = nodes[idx];
        if node.sym != usize::MAX {
            sym_depth.push((node.sym, d.max(1)));
            depth_count[d.max(1) as usize] += 1;
        } else {
            stack.push((node.left, d + 1));
            stack.push((node.right, d + 1));
        }
    }

    // Clamp to max_len and repair the Kraft inequality (miniz-style).
    let mut counts = vec![0u32; max_len + 1];
    for &(_, d) in &sym_depth {
        counts[(d as usize).min(max_len)] += 1;
    }
    let mut total: u64 = 0;
    for (i, &c) in counts.iter().enumerate().skip(1) {
        total += (c as u64) << (max_len - i);
    }
    while total > 1u64 << max_len {
        // Demote: remove one code at max depth; promote a shallower code to
        // depth+1, gaining back capacity.
        counts[max_len] -= 1;
        for i in (1..max_len).rev() {
            if counts[i] != 0 {
                counts[i] -= 1;
                counts[i + 1] += 2;
                break;
            }
        }
        total -= 1;
    }

    // Assign the adjusted lengths to symbols ordered by descending frequency
    // (most frequent symbols get the shortest codes).
    let mut by_freq: Vec<usize> = used;
    by_freq.sort_by_key(|&s| (std::cmp::Reverse(freqs[s]), s));
    let mut li = 1usize;
    for &sym in &by_freq {
        while counts[li] == 0 {
            li += 1;
        }
        counts[li] -= 1;
        lengths[sym] = li as u8;
    }
    lengths
}

/// Canonical Huffman encoder table: per-symbol (code, length), with the code
/// already bit-reversed for LSB-first emission.
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Bit-reversed canonical code per symbol.
    pub codes: Vec<u16>,
    /// Code length in bits per symbol (0 = unused).
    pub lengths: Vec<u8>,
}

impl Encoder {
    /// Build canonical codes from lengths (RFC 1951 §3.2.2 algorithm).
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        let mut bl_count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                bl_count[l as usize] += 1;
            }
        }
        let mut next_code = vec![0u32; max_len + 2];
        let mut code = 0u32;
        for bits in 1..=max_len {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = vec![0u16; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len > 0 {
                let c = next_code[len as usize];
                next_code[len as usize] += 1;
                codes[sym] = reverse_bits(c, len as u32) as u16;
            }
        }
        Self { codes, lengths: lengths.to_vec() }
    }

    /// Encoded (bit-reversed code, length) pair for a symbol.
    #[inline]
    pub fn code(&self, sym: usize) -> (u16, u8) {
        (self.codes[sym], self.lengths[sym])
    }
}

/// Table-driven canonical Huffman decoder.
///
/// Uses a single-level lookup table of `2^max_len` entries mapping the next
/// `max_len` input bits to (symbol, length). DEFLATE's 15-bit cap keeps this
/// at 32 K entries.
#[derive(Debug, Clone)]
pub struct Decoder {
    table: Vec<u32>, // (sym << 4) | len, 0 = invalid
    max_len: u32,
}

/// Error for invalid Huffman table construction or decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffError {
    /// Code lengths violate the Kraft inequality (over-subscribed).
    Oversubscribed,
    /// Encountered a bit pattern with no assigned code.
    InvalidCode,
    /// Ran out of input bits.
    OutOfBits,
}

impl From<OutOfBits> for HuffError {
    fn from(_: OutOfBits) -> Self {
        HuffError::OutOfBits
    }
}

impl std::fmt::Display for HuffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffError::Oversubscribed => write!(f, "huffman code lengths oversubscribed"),
            HuffError::InvalidCode => write!(f, "invalid huffman code in stream"),
            HuffError::OutOfBits => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for HuffError {}

impl Decoder {
    /// Build a decoder from canonical code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, HuffError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_len == 0 {
            // Degenerate empty alphabet; decode always fails.
            return Ok(Self { table: vec![0; 2], max_len: 1 });
        }
        // Check Kraft.
        let mut kraft: u64 = 0;
        for &l in lengths {
            if l > 0 {
                kraft += 1u64 << (max_len - l as u32);
            }
        }
        if kraft > 1u64 << max_len {
            return Err(HuffError::Oversubscribed);
        }
        let enc = Encoder::from_lengths(lengths);
        let mut table = vec![0u32; 1usize << max_len];
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            let code = enc.codes[sym] as usize; // already bit-reversed
            let entry = ((sym as u32) << 4) | len as u32;
            // Fill every table slot whose low `len` bits equal the code.
            let step = 1usize << len;
            let mut idx = code;
            while idx < table.len() {
                table[idx] = entry;
                idx += step;
            }
        }
        Ok(Self { table, max_len })
    }

    /// Decode one symbol from the reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, HuffError> {
        let bits = r.peek_bits(self.max_len);
        let entry = self.table[bits as usize];
        if entry == 0 {
            // Either an unassigned pattern or insufficient bits remain.
            return if r.bits_remaining() == 0 {
                Err(HuffError::OutOfBits)
            } else {
                Err(HuffError::InvalidCode)
            };
        }
        let len = entry & 0xF;
        r.consume(len)?;
        Ok((entry >> 4) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn roundtrip_symbols(freqs: &[u32], max_len: usize, stream: &[usize]) {
        let lengths = build_code_lengths(freqs, max_len);
        let enc = Encoder::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            let (c, l) = enc.code(s);
            assert!(l > 0, "symbol {s} has no code");
            w.write_bits(c as u64, l as u32);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn skewed_frequencies_roundtrip() {
        let freqs = [1000, 500, 100, 50, 10, 5, 1, 1];
        let stream: Vec<usize> = (0..8).cycle().take(64).collect();
        roundtrip_symbols(&freqs, 15, &stream);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u32; 16];
        freqs[7] = 42;
        let lengths = build_code_lengths(&freqs, 15);
        assert_eq!(lengths[7], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 7 || l == 0));
    }

    #[test]
    fn empty_alphabet() {
        let lengths = build_code_lengths(&[0, 0, 0], 15);
        assert!(lengths.iter().all(|&l| l == 0));
    }

    #[test]
    fn length_limit_respected_for_pathological_freqs() {
        // Fibonacci-like frequencies force deep unconstrained trees.
        let mut freqs = vec![0u32; 40];
        let (mut a, mut b) = (1u32, 1u32);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a.saturating_add(b);
            a = b;
            b = c;
        }
        for max in [7usize, 9, 15] {
            let lengths = build_code_lengths(&freqs, max);
            assert!(lengths.iter().all(|&l| (l as usize) <= max));
            // Kraft sum must be exactly satisfiable.
            let kraft: f64 =
                lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
            assert!(kraft <= 1.0 + 1e-9, "kraft {kraft} for max {max}");
            // And decodable.
            Decoder::from_lengths(&lengths).unwrap();
        }
    }

    #[test]
    fn canonical_codes_match_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) for A..H.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let enc = Encoder::from_lengths(&lengths);
        // Expected canonical codes: A=010 B=011 C=100 D=101 E=110 F=00
        // G=1110 H=1111. Our stored codes are bit-reversed.
        let expect = [
            (0b010u32, 3u32),
            (0b011, 3),
            (0b100, 3),
            (0b101, 3),
            (0b110, 3),
            (0b00, 2),
            (0b1110, 4),
            (0b1111, 4),
        ];
        for (sym, &(code, len)) in expect.iter().enumerate() {
            assert_eq!(enc.lengths[sym] as u32, len);
            assert_eq!(enc.codes[sym] as u32, reverse_bits(code, len), "sym {sym}");
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three 1-bit codes cannot coexist.
        assert_eq!(Decoder::from_lengths(&[1, 1, 1]).unwrap_err(), HuffError::Oversubscribed);
    }

    #[test]
    fn decoder_rejects_unassigned_pattern() {
        // Lengths {1} for symbol 0 only: pattern `1` is unassigned when the
        // canonical code for symbol 0 is `0`.
        let dec = Decoder::from_lengths(&[1, 0]).unwrap();
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap_err(), HuffError::InvalidCode);
    }

    #[test]
    fn uniform_256_symbol_alphabet() {
        let freqs = vec![7u32; 256];
        let stream: Vec<usize> = (0..256).collect();
        roundtrip_symbols(&freqs, 15, &stream);
    }
}
