//! DEFLATE block encoding: stored, fixed-Huffman, and dynamic-Huffman blocks,
//! including the RLE-compressed code-length header of RFC 1951 §3.2.7.

use crate::bitio::BitWriter;
use crate::consts::*;
use crate::huffman::{build_code_lengths, Encoder as HuffEncoder};
use crate::lz77::{tokenize, MatcherParams, Token};

/// Compression level: 0 = stored only, 1..=9 = increasing effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Level(pub u8);

impl Level {
    pub const STORED: Level = Level(0);
    pub const FAST: Level = Level(1);
    pub const DEFAULT: Level = Level(6);
    pub const BEST: Level = Level(9);
}

impl Default for Level {
    fn default() -> Self {
        Level::DEFAULT
    }
}

/// Tokens per encoded block. Bounded so symbol statistics stay local.
const BLOCK_TOKENS: usize = 64 * 1024;
/// Maximum bytes per stored block (RFC 1951 LEN field is 16 bits).
const STORED_MAX: usize = 65_535;

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    deflate_fragment(data, level, true)
}

/// Compress `data` into a DEFLATE *fragment* suitable for chunk-parallel
/// stitching (pigz-style).
///
/// With `last == true` this is byte-identical to [`deflate`]: the stream
/// ends in a block with BFINAL set. With `last == false` every block is
/// emitted non-final and the fragment is terminated with a sync flush —
/// an empty non-final stored block — so it ends on a byte boundary.
/// Concatenating any number of non-final fragments followed by one final
/// fragment yields a single valid DEFLATE stream that [`crate::inflate`]
/// (or any RFC 1951 decoder) decodes to the concatenated inputs, because
/// the decoder simply keeps reading blocks until BFINAL.
pub fn deflate_fragment(data: &[u8], level: Level, last: bool) -> Vec<u8> {
    let mut w = BitWriter::with_capacity(data.len() / 2 + 64);
    if level.0 == 0 || data.is_empty() {
        // Stored blocks always end byte-aligned, so no sync flush is
        // needed for a non-final stored fragment.
        write_stored(&mut w, data, last);
        return w.finish();
    }

    // Tokenize the whole input, then emit in bounded blocks.
    let mut tokens: Vec<Token> = Vec::with_capacity(data.len() / 4 + 16);
    tokenize(data, MatcherParams::for_level(level.0), |t| tokens.push(t));

    // Byte offset where each block's tokens begin, for stored fallback.
    let mut block_start_byte = 0usize;
    let mut i = 0usize;
    while i < tokens.len() || (tokens.is_empty() && i == 0) {
        let end = (i + BLOCK_TOKENS).min(tokens.len());
        let block = &tokens[i..end];
        let is_final = last && end == tokens.len();
        let block_bytes: usize = block
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        encode_block(
            &mut w,
            block,
            &data[block_start_byte..block_start_byte + block_bytes],
            is_final,
        );
        block_start_byte += block_bytes;
        i = end;
        if tokens.is_empty() {
            break;
        }
    }
    if !last {
        // Sync flush: the empty non-final stored block realigns the
        // fragment to a byte boundary so the next fragment can be
        // concatenated bytewise.
        write_stored(&mut w, &[], false);
    }
    w.finish()
}

/// Emit one block choosing the cheapest of stored/fixed/dynamic encoding.
fn encode_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8], is_final: bool) {
    // Gather symbol frequencies.
    let mut lit_freq = [0u32; NUM_LITLEN];
    let mut dist_freq = [0u32; NUM_DIST];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[257 + length_code(len as usize)] += 1;
                dist_freq[dist_code(dist as usize)] += 1;
            }
        }
    }
    lit_freq[EOB as usize] += 1;

    let dyn_lit_lens = build_code_lengths(&lit_freq, MAX_CODE_LEN);
    let dyn_dist_lens = build_code_lengths(&dist_freq, MAX_CODE_LEN);
    let (clc_stream, clc_lens, hlit, hdist, hclen) = build_clc(&dyn_lit_lens, &dyn_dist_lens);

    let fixed = fixed_tables();
    let fixed_cost = block_cost(tokens, &fixed.0.lengths, &fixed.1.lengths);
    let dyn_body = block_cost(tokens, &dyn_lit_lens, &dyn_dist_lens);
    let dyn_header = dyn_header_cost(&clc_stream, &clc_lens, hclen);
    let dyn_cost = dyn_body + dyn_header;
    // Stored cost: 3 bit header + align + per-chunk 4-byte LEN/NLEN + data.
    let stored_chunks = raw.len().div_ceil(STORED_MAX).max(1);
    let stored_cost = (stored_chunks * (4 * 8) + raw.len() * 8 + 8) as u64;

    if stored_cost < fixed_cost && stored_cost < dyn_cost {
        write_stored(w, raw, is_final);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(is_final as u64, 1);
        w.write_bits(0b01, 2); // fixed Huffman
        write_tokens(w, tokens, &fixed.0, &fixed.1);
    } else {
        w.write_bits(is_final as u64, 1);
        w.write_bits(0b10, 2); // dynamic Huffman
        write_dyn_header(w, &clc_stream, &clc_lens, hlit, hdist, hclen);
        let lit_enc = HuffEncoder::from_lengths(&dyn_lit_lens);
        let dist_enc = HuffEncoder::from_lengths(&dyn_dist_lens);
        write_tokens(w, tokens, &lit_enc, &dist_enc);
    }
}

/// Cost in bits of encoding `tokens` (plus EOB) with the given code lengths.
fn block_cost(tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) -> u64 {
    let mut bits = lit_lens[EOB as usize] as u64;
    for t in tokens {
        match *t {
            Token::Literal(b) => bits += lit_lens[b as usize] as u64,
            Token::Match { len, dist } => {
                let lc = length_code(len as usize);
                let dc = dist_code(dist as usize);
                bits += lit_lens[257 + lc] as u64
                    + LENGTH_EXTRA[lc] as u64
                    + dist_lens[dc] as u64
                    + DIST_EXTRA[dc] as u64;
            }
        }
    }
    bits
}

fn dyn_header_cost(clc_stream: &[(u8, u8)], clc_lens: &[u8], hclen: usize) -> u64 {
    let mut bits = (5 + 5 + 4 + (hclen + 4) * 3) as u64;
    for &(sym, _) in clc_stream {
        bits += clc_lens[sym as usize] as u64;
        bits += match sym {
            16 => 2,
            17 => 3,
            18 => 7,
            _ => 0,
        } as u64;
    }
    bits
}

/// Fixed literal/length and distance tables (RFC 1951 §3.2.6).
pub fn fixed_tables() -> (HuffEncoder, HuffEncoder) {
    let mut lit = vec![0u8; 288];
    for (i, l) in lit.iter_mut().enumerate() {
        *l = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist = vec![5u8; 30];
    (HuffEncoder::from_lengths(&lit), HuffEncoder::from_lengths(&dist))
}

/// Fixed code lengths (for the decoder).
pub fn fixed_lengths() -> (Vec<u8>, Vec<u8>) {
    let t = fixed_tables();
    (t.0.lengths, t.1.lengths)
}

fn write_tokens(w: &mut BitWriter, tokens: &[Token], lit: &HuffEncoder, dist: &HuffEncoder) {
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                let (c, l) = lit.code(b as usize);
                w.write_bits(c as u64, l as u32);
            }
            Token::Match { len, dist: d } => {
                let lc = length_code(len as usize);
                let (c, l) = lit.code(257 + lc);
                w.write_bits(c as u64, l as u32);
                let extra = LENGTH_EXTRA[lc] as u32;
                if extra > 0 {
                    w.write_bits((len - LENGTH_BASE[lc]) as u64, extra);
                }
                let dc = dist_code(d as usize);
                let (c, l) = dist.code(dc);
                w.write_bits(c as u64, l as u32);
                let extra = DIST_EXTRA[dc] as u32;
                if extra > 0 {
                    w.write_bits((d - DIST_BASE[dc]) as u64, extra);
                }
            }
        }
    }
    let (c, l) = lit.code(EOB as usize);
    w.write_bits(c as u64, l as u32);
}

fn write_stored(w: &mut BitWriter, data: &[u8], is_final: bool) {
    let mut chunks: Vec<&[u8]> = data.chunks(STORED_MAX).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        w.write_bits((is_final && i == last) as u64, 1);
        w.write_bits(0b00, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

/// Run-length encode the concatenated lit+dist code lengths with symbols
/// 16 (repeat prev 3-6), 17 (zeros 3-10), 18 (zeros 11-138), and build the
/// code-length-code. Returns (rle stream of (sym, extra), clc lengths, HLIT,
/// HDIST, HCLEN).
fn build_clc(lit_lens: &[u8], dist_lens: &[u8]) -> (Vec<(u8, u8)>, Vec<u8>, usize, usize, usize) {
    let hlit = trailing_trim(lit_lens, 257);
    let hdist = trailing_trim(dist_lens, 1);
    let mut all: Vec<u8> = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);

    let mut stream: Vec<(u8, u8)> = Vec::new();
    let mut i = 0usize;
    while i < all.len() {
        let v = all[i];
        let mut run = 1usize;
        while i + run < all.len() && all[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                stream.push((18, (take - 11) as u8));
                left -= take;
            }
            if left >= 3 {
                stream.push((17, (left - 3) as u8));
                left = 0;
            }
            for _ in 0..left {
                stream.push((0, 0));
            }
        } else {
            stream.push((v, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                stream.push((16, (take - 3) as u8));
                left -= take;
            }
            for _ in 0..left {
                stream.push((v, 0));
            }
        }
        i += run;
    }

    let mut clc_freq = [0u32; NUM_CLC];
    for &(sym, _) in &stream {
        clc_freq[sym as usize] += 1;
    }
    let clc_lens = build_code_lengths(&clc_freq, MAX_CLC_LEN);
    // HCLEN: number of CLC lengths transmitted, in permuted order, >= 4.
    let mut hclen = NUM_CLC;
    while hclen > 4 && clc_lens[CLC_ORDER[hclen - 1]] == 0 {
        hclen -= 1;
    }
    (stream, clc_lens, hlit, hdist, hclen - 4)
}

/// Number of leading entries to keep (trailing zeros trimmed, min floor).
fn trailing_trim(lens: &[u8], floor: usize) -> usize {
    let mut n = lens.len();
    while n > floor && lens[n - 1] == 0 {
        n -= 1;
    }
    n
}

fn write_dyn_header(
    w: &mut BitWriter,
    stream: &[(u8, u8)],
    clc_lens: &[u8],
    hlit: usize,
    hdist: usize,
    hclen: usize,
) {
    w.write_bits((hlit - 257) as u64, 5);
    w.write_bits((hdist - 1) as u64, 5);
    w.write_bits(hclen as u64, 4);
    for &ord in CLC_ORDER.iter().take(hclen + 4) {
        w.write_bits(clc_lens[ord] as u64, 3);
    }
    let clc = HuffEncoder::from_lengths(clc_lens);
    for &(sym, extra) in stream {
        let (c, l) = clc.code(sym as usize);
        debug_assert!(l > 0, "CLC symbol {sym} unencodable");
        w.write_bits(c as u64, l as u32);
        match sym {
            16 => w.write_bits(extra as u64, 2),
            17 => w.write_bits(extra as u64, 3),
            18 => w.write_bits(extra as u64, 7),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn stored_roundtrip() {
        for data in [&b""[..], b"x", b"hello stored world"] {
            let enc = deflate(data, Level::STORED);
            assert_eq!(inflate(&enc).unwrap(), data);
        }
    }

    #[test]
    fn stored_multi_chunk() {
        let data = vec![7u8; 200_000];
        let enc = deflate(&data, Level::STORED);
        assert_eq!(inflate(&enc).unwrap(), data);
    }

    #[test]
    fn incompressible_falls_back_near_stored() {
        // Pseudo-random bytes: compressed size should not blow up.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xFF) as u8
            })
            .collect();
        let enc = deflate(&data, Level::DEFAULT);
        assert!(enc.len() <= data.len() + data.len() / 100 + 64);
        assert_eq!(inflate(&enc).unwrap(), data);
    }

    #[test]
    fn clc_rle_runs() {
        let lit = {
            let mut v = vec![0u8; 286];
            v[0] = 8;
            v[256] = 8;
            v
        };
        let dist = vec![0u8; 30];
        let (stream, clc_lens, hlit, hdist, _hclen) = build_clc(&lit, &dist);
        assert_eq!(hlit, 257);
        assert_eq!(hdist, 1);
        // Expect symbol 18 runs covering the 255 zero gap.
        assert!(stream.iter().any(|&(s, _)| s == 18));
        assert!(clc_lens[18] > 0);
    }

    #[test]
    fn level0_emits_only_stored_blocks() {
        // True zlib level-0 semantics: no matching, stored blocks only.
        // Every block header must be BTYPE=00, so the stream is 5 bytes of
        // framing per 65535-byte chunk plus the raw bytes.
        let data = b"abcabcabcabc".repeat(10_000); // highly compressible
        let enc = deflate(&data, Level(0));
        let chunks = data.len().div_ceil(STORED_MAX);
        assert_eq!(enc.len(), data.len() + chunks * 5);
        assert_eq!(inflate(&enc).unwrap(), data);
    }

    #[test]
    fn fragment_last_matches_deflate() {
        let data = b"fragment parity fragment parity".repeat(300);
        for level in [Level(0), Level(1), Level::DEFAULT, Level::BEST] {
            assert_eq!(deflate_fragment(&data, level, true), deflate(&data, level));
        }
    }

    #[test]
    fn fragments_stitch_into_one_valid_stream() {
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.push((i % 7) as u8 * 31);
            if i % 11 == 0 {
                data.extend_from_slice(b"stitchable content");
            }
        }
        for level in [Level(0), Level(1), Level::DEFAULT, Level::BEST] {
            for chunk in [1_000usize, 65_536, 100_000] {
                let pieces: Vec<&[u8]> = data.chunks(chunk).collect();
                let mut stream = Vec::new();
                for (i, p) in pieces.iter().enumerate() {
                    stream.extend_from_slice(&deflate_fragment(p, level, i == pieces.len() - 1));
                }
                assert_eq!(inflate(&stream).unwrap(), data, "level {level:?} chunk {chunk}");
            }
        }
    }

    #[test]
    fn non_final_fragment_is_byte_aligned_and_resumable() {
        // An empty fragment in the middle of a stitched stream is legal.
        let a = deflate_fragment(b"first piece first piece", Level::DEFAULT, false);
        let b = deflate_fragment(b"", Level::DEFAULT, false);
        let c = deflate_fragment(b"last piece", Level::DEFAULT, true);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        assert_eq!(inflate(&stream).unwrap(), b"first piece first piecelast piece");
        // A lone non-final fragment must NOT decode as a complete stream.
        assert!(inflate(&a).is_err(), "missing BFINAL must be detected");
    }

    #[test]
    fn fixed_table_shape() {
        let (lit, dist) = fixed_lengths();
        assert_eq!(lit.len(), 288);
        assert_eq!(dist.len(), 30);
        assert_eq!(lit[0], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[280], 8);
        assert!(dist.iter().all(|&d| d == 5));
    }
}
