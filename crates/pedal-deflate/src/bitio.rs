//! LSB-first bit-level I/O used by the DEFLATE format.
//!
//! DEFLATE packs data elements starting at the least-significant bit of each
//! byte. Huffman codes are packed starting from their most-significant bit,
//! which the encoder handles by pre-reversing code bit patterns.

/// Accumulating LSB-first bit writer over a `Vec<u8>`.
#[derive(Debug)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bit accumulator; bits fill from the LSB upwards.
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_bytes`).
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        Self { out: Vec::new(), acc: 0, nbits: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { out: Vec::with_capacity(cap), acc: 0, nbits: 0 }
    }

    /// Write the low `n` bits of `bits` (n <= 57 to keep the accumulator safe).
    #[inline]
    pub fn write_bits(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(n == 64 || bits < (1u64 << n));
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Write raw bytes; caller must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes emitted so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Total number of bits written so far (including unflushed ones).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Finish writing, flushing any partial byte (zero-padded).
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Error returned when a reader runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

/// LSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, acc: 0, nbits: 0 }
    }

    /// Refill the accumulator to at least 56 bits when input remains.
    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (n <= 32). Returns an error if the stream is exhausted.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, OutOfBits> {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        let out = if n == 0 { 0 } else { (self.acc & ((1u64 << n) - 1)) as u32 };
        self.acc >>= n;
        self.nbits -= n;
        Ok(out)
    }

    /// Peek up to `n` bits without consuming (may return fewer near EOF;
    /// missing high bits read as zero).
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
        }
        if n == 0 {
            0
        } else {
            (self.acc & ((1u64 << n) - 1)) as u32
        }
    }

    /// Consume `n` bits previously peeked. `n` must not exceed available bits.
    #[inline]
    pub fn consume(&mut self, n: u32) -> Result<(), OutOfBits> {
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(OutOfBits);
            }
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Number of bits still available (buffered + unread input).
    pub fn bits_remaining(&self) -> u64 {
        self.nbits as u64 + (self.data.len() - self.pos) as u64 * 8
    }

    /// Discard buffered bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Read `len` whole bytes; requires byte alignment.
    pub fn read_bytes(&mut self, len: usize) -> Result<Vec<u8>, OutOfBits> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut out = Vec::with_capacity(len);
        // Drain any buffered whole bytes first.
        while self.nbits >= 8 && out.len() < len {
            out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
        let need = len - out.len();
        if self.data.len() - self.pos < need {
            return Err(OutOfBits);
        }
        out.extend_from_slice(&self.data[self.pos..self.pos + need]);
        self.pos += need;
        Ok(out)
    }
}

/// Reverse the low `n` bits of `code` (used to emit Huffman codes MSB-first
/// through an LSB-first writer).
#[inline]
pub fn reverse_bits(code: u32, n: u32) -> u32 {
    code.reverse_bits() >> (32 - n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let fields: Vec<(u64, u32)> = vec![
            (0b1, 1),
            (0b10, 2),
            (0b11111, 5),
            (0xABCD, 16),
            (0x1FFFFF, 21),
            (0, 3),
            (0xFFFF_FFFF >> 2, 30),
        ];
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap() as u64, v);
        }
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.align_byte();
        w.write_bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        r.align_byte();
        assert_eq!(r.read_bytes(3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn out_of_bits_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn peek_then_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0x5A5A, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(8), 0x5A);
        r.consume(4).unwrap();
        assert_eq!(r.peek_bits(4), 0x5);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b100, 3), 0b001);
        assert_eq!(reverse_bits(0b1011, 4), 0b1101);
    }

    #[test]
    fn bit_len_tracks_partial() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_bits(0x7F, 7);
        assert_eq!(w.bit_len(), 9);
    }
}
