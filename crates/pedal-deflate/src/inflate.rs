//! DEFLATE decoder (inflate), RFC 1951.

use crate::bitio::{BitReader, OutOfBits};
use crate::consts::*;
use crate::huffman::{Decoder, HuffError};

/// Errors produced while decoding a DEFLATE stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended prematurely.
    UnexpectedEof,
    /// Reserved block type 0b11.
    InvalidBlockType,
    /// Stored block LEN/NLEN mismatch.
    StoredLenMismatch,
    /// Invalid Huffman code structure or symbol.
    Huffman(HuffError),
    /// Back-reference before the start of output.
    DistanceTooFar { dist: usize, available: usize },
    /// Length/distance symbol out of the valid range.
    InvalidSymbol(u16),
    /// The code-length code produced an invalid expansion.
    BadCodeLengths,
    /// Output would exceed the caller-provided limit.
    OutputLimitExceeded(usize),
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InflateError::UnexpectedEof => write!(f, "unexpected end of deflate stream"),
            InflateError::InvalidBlockType => write!(f, "reserved block type 11"),
            InflateError::StoredLenMismatch => write!(f, "stored block LEN != !NLEN"),
            InflateError::Huffman(e) => write!(f, "huffman error: {e}"),
            InflateError::DistanceTooFar { dist, available } => {
                write!(f, "distance {dist} exceeds {available} bytes of history")
            }
            InflateError::InvalidSymbol(s) => write!(f, "invalid symbol {s}"),
            InflateError::BadCodeLengths => write!(f, "invalid code length expansion"),
            InflateError::OutputLimitExceeded(n) => {
                write!(f, "output exceeds limit of {n} bytes")
            }
        }
    }
}

impl std::error::Error for InflateError {}

impl From<OutOfBits> for InflateError {
    fn from(_: OutOfBits) -> Self {
        InflateError::UnexpectedEof
    }
}

impl From<HuffError> for InflateError {
    fn from(e: HuffError) -> Self {
        match e {
            HuffError::OutOfBits => InflateError::UnexpectedEof,
            other => InflateError::Huffman(other),
        }
    }
}

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_with_limit(data, usize::MAX)
}

/// Decompress with an output size cap (guards against decompression bombs).
pub fn inflate_with_limit(data: &[u8], limit: usize) -> Result<Vec<u8>, InflateError> {
    inflate_core(data, limit, false).map(|(out, _)| out)
}

/// Decompress a sync-flush DEFLATE fragment, as produced by
/// `compress_fragment`: a run of blocks that either ends with a BFINAL
/// block (the stream's last fragment) or stops cleanly at a byte-aligned
/// block boundary with fewer than 3 bits of padding left. Returns the
/// decoded bytes and whether a BFINAL block was seen, so a streaming
/// caller can distinguish "fragment done" from "stream done".
pub fn inflate_fragment_with_limit(
    data: &[u8],
    limit: usize,
) -> Result<(Vec<u8>, bool), InflateError> {
    inflate_core(data, limit, true)
}

fn inflate_core(
    data: &[u8],
    limit: usize,
    fragment: bool,
) -> Result<(Vec<u8>, bool), InflateError> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::with_capacity((data.len() * 3).min(1 << 20));
    loop {
        if fragment && r.bits_remaining() < 3 {
            // A non-final fragment ends after its sync-flush stored block;
            // anything shorter than a block header is alignment padding.
            return Ok((out, false));
        }
        let bfinal = r.read_bits(1)?;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => inflate_stored(&mut r, &mut out, limit)?,
            0b01 => {
                let (lit, dist) = fixed_decoders()?;
                inflate_block(&mut r, &mut out, &lit, &dist, limit)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_header(&mut r)?;
                inflate_block(&mut r, &mut out, &lit, &dist, limit)?;
            }
            _ => return Err(InflateError::InvalidBlockType),
        }
        if bfinal == 1 {
            return Ok((out, true));
        }
    }
}

fn inflate_stored(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limit: usize,
) -> Result<(), InflateError> {
    r.align_byte();
    let len_bytes = r.read_bytes(2)?;
    let nlen_bytes = r.read_bytes(2)?;
    let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
    let nlen = u16::from_le_bytes([nlen_bytes[0], nlen_bytes[1]]);
    if len != !nlen {
        return Err(InflateError::StoredLenMismatch);
    }
    if out.len() + len as usize > limit {
        return Err(InflateError::OutputLimitExceeded(limit));
    }
    let bytes = r.read_bytes(len as usize)?;
    out.extend_from_slice(&bytes);
    Ok(())
}

fn fixed_decoders() -> Result<(Decoder, Decoder), InflateError> {
    let (lit_lens, dist_lens) = crate::encoder::fixed_lengths();
    Ok((Decoder::from_lengths(&lit_lens)?, Decoder::from_lengths(&dist_lens)?))
}

fn read_dynamic_header(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > NUM_LITLEN {
        return Err(InflateError::BadCodeLengths);
    }
    let mut clc_lens = [0u8; NUM_CLC];
    for &ord in CLC_ORDER.iter().take(hclen) {
        clc_lens[ord] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lens)?;

    let total = hlit + hdist;
    let mut lens = vec![0u8; total];
    let mut i = 0usize;
    while i < total {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => {
                lens[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::BadCodeLengths);
                }
                let rep = r.read_bits(2)? as usize + 3;
                if i + rep > total {
                    return Err(InflateError::BadCodeLengths);
                }
                let v = lens[i - 1];
                for _ in 0..rep {
                    lens[i] = v;
                    i += 1;
                }
            }
            17 => {
                let rep = r.read_bits(3)? as usize + 3;
                if i + rep > total {
                    return Err(InflateError::BadCodeLengths);
                }
                i += rep;
            }
            18 => {
                let rep = r.read_bits(7)? as usize + 11;
                if i + rep > total {
                    return Err(InflateError::BadCodeLengths);
                }
                i += rep;
            }
            other => return Err(InflateError::InvalidSymbol(other)),
        }
    }
    let lit = Decoder::from_lengths(&lens[..hlit])?;
    let dist = Decoder::from_lengths(&lens[hlit..])?;
    Ok((lit, dist))
}

fn inflate_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
    limit: usize,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() >= limit {
                    return Err(InflateError::OutputLimitExceeded(limit));
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let lc = (sym - 257) as usize;
                let len = LENGTH_BASE[lc] as usize + r.read_bits(LENGTH_EXTRA[lc] as u32)? as usize;
                let dsym = dist.decode(r)?;
                if dsym as usize >= NUM_DIST {
                    return Err(InflateError::InvalidSymbol(dsym));
                }
                let dc = dsym as usize;
                let d = DIST_BASE[dc] as usize + r.read_bits(DIST_EXTRA[dc] as u32)? as usize;
                if d > out.len() {
                    return Err(InflateError::DistanceTooFar { dist: d, available: out.len() });
                }
                if out.len() + len > limit {
                    return Err(InflateError::OutputLimitExceeded(limit));
                }
                copy_match(out, d, len);
            }
            other => return Err(InflateError::InvalidSymbol(other)),
        }
    }
}

/// Copy `len` bytes from `dist` behind the end of `out`, handling overlap.
#[inline]
fn copy_match(out: &mut Vec<u8>, dist: usize, len: usize) {
    let start = out.len() - dist;
    if dist >= len {
        // Non-overlapping: single extend.
        out.extend_from_within(start..start + len);
    } else {
        out.reserve(len);
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{deflate, Level};

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog again!";
        for level in [Level::FAST, Level::DEFAULT, Level::BEST] {
            let enc = deflate(data, level);
            assert_eq!(inflate(&enc).unwrap(), data);
        }
    }

    #[test]
    fn decode_known_zlib_fixture() {
        // Raw deflate of "hello hello hello hello\n" produced by zlib
        // (fixed-Huffman block): cb 48 cd c9 c9 57 c8 40 27 b9 00
        let fixture: [u8; 11] = [0xcb, 0x48, 0xcd, 0xc9, 0xc9, 0x57, 0xc8, 0x40, 0x27, 0xb9, 0x00];
        assert_eq!(inflate(&fixture).unwrap(), b"hello hello hello hello\n");
    }

    #[test]
    fn decode_known_stored_fixture() {
        // Stored block: 01 | len=5 | nlen | "abcde"
        let mut fixture = vec![0x01, 0x05, 0x00, 0xFA, 0xFF];
        fixture.extend_from_slice(b"abcde");
        assert_eq!(inflate(&fixture).unwrap(), b"abcde");
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        assert_eq!(inflate(&[0b0000_0111]), Err(InflateError::InvalidBlockType));
    }

    #[test]
    fn truncated_stream_rejected() {
        let enc = deflate(b"some data to truncate, repeated repeated", Level::DEFAULT);
        for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
            assert!(inflate(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stored_len_mismatch_rejected() {
        let fixture = vec![0x01, 0x05, 0x00, 0x00, 0x00, b'a', b'b', b'c', b'd', b'e'];
        assert_eq!(inflate(&fixture), Err(InflateError::StoredLenMismatch));
    }

    #[test]
    fn distance_too_far_rejected() {
        // Craft via our encoder then ensure decoder accepts; manual tamper is
        // hard, so test the guard directly through a fixed block with a
        // reference before any output: fixed block, first symbol is a match.
        // length code 257 (len 3) is 7-bit code 0000001; dist code 0 is 00000.
        // Build bits: BFINAL=1 BTYPE=01 then code 257, then dist 0.
        use crate::bitio::{reverse_bits, BitWriter};
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // Symbol 257 has fixed code length 7, canonical code 0000001.
        w.write_bits(reverse_bits(0b0000001, 7) as u64, 7);
        // Distance symbol 0: 5-bit code 00000.
        w.write_bits(0, 5);
        let bytes = w.finish();
        match inflate(&bytes) {
            Err(InflateError::DistanceTooFar { dist: 1, available: 0 }) => {}
            other => panic!("expected DistanceTooFar, got {other:?}"),
        }
    }

    #[test]
    fn output_limit_enforced() {
        let data = vec![0u8; 10_000];
        let enc = deflate(&data, Level::DEFAULT);
        assert_eq!(inflate_with_limit(&enc, 100), Err(InflateError::OutputLimitExceeded(100)));
        assert_eq!(inflate_with_limit(&enc, 10_000).unwrap(), data);
    }

    #[test]
    fn overlapping_copy_correct() {
        let mut out = b"ab".to_vec();
        copy_match(&mut out, 2, 6);
        assert_eq!(out, b"abababab");
        let mut out2 = b"xyz".to_vec();
        copy_match(&mut out2, 1, 4);
        assert_eq!(out2, b"xyzzzzz");
    }
}
