//! # pedal-deflate
//!
//! A from-scratch implementation of the DEFLATE compressed data format
//! (RFC 1951), built for the PEDAL reproduction. Provides:
//!
//! * [`compress`] / [`decompress`] — one-shot raw DEFLATE streams,
//! * [`Level`] — a zlib-like 0..=9 effort ladder,
//! * the LZ77 tokenizer and canonical Huffman machinery as public modules
//!   so the SZ3 pipeline and the simulated C-Engine can reuse them.
//!
//! The bitstream is interoperable with other DEFLATE decoders: it emits
//! stored, fixed-Huffman, and dynamic-Huffman blocks, choosing the cheapest
//! per block.
//!
//! ```
//! use pedal_deflate::{compress, decompress, Level};
//! let data = b"compress me compress me compress me";
//! let packed = compress(data, Level::DEFAULT);
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

pub mod bitio;
pub mod consts;
pub mod encoder;
pub mod huffman;
pub mod inflate;
pub mod lz77;

pub use encoder::{deflate as compress, deflate_fragment as compress_fragment, Level};
pub use inflate::{
    inflate as decompress, inflate_fragment_with_limit as decompress_fragment_with_limit,
    inflate_with_limit as decompress_with_limit, InflateError,
};

/// Upper bound on the compressed size of `n` input bytes (stored-block
/// worst case plus per-chunk framing; block splitting can leave a short
/// trailing chunk per 64 KiB block, hence 10 bytes of slack per chunk).
pub fn max_compressed_len(n: usize) -> usize {
    let chunks = n.div_ceil(65_535).max(1);
    n + chunks * 10 + 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_incompressible_input() {
        let mut x = 0x2545F491u64;
        let data: Vec<u8> = (0..300_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        for level in [Level::STORED, Level::FAST, Level::DEFAULT, Level::BEST] {
            let enc = compress(&data, level);
            assert!(
                enc.len() <= max_compressed_len(data.len()),
                "level {level:?}: {} > bound {}",
                enc.len(),
                max_compressed_len(data.len())
            );
            assert_eq!(decompress(&enc).unwrap(), data);
        }
    }

    #[test]
    fn empty_input() {
        for level in [Level::STORED, Level::DEFAULT] {
            let enc = compress(b"", level);
            assert!(!enc.is_empty());
            assert_eq!(decompress(&enc).unwrap(), b"");
        }
    }

    #[test]
    fn highly_compressible_shrinks_a_lot() {
        let data = b"abcd".repeat(25_000);
        let enc = compress(&data, Level::DEFAULT);
        assert!(enc.len() * 50 < data.len(), "got {} bytes", enc.len());
        assert_eq!(decompress(&enc).unwrap(), data);
    }
}
