//! LZ77 string matching with hash chains and optional lazy evaluation.
//!
//! Produces a token stream of literals and (length, distance) matches over a
//! 32 KiB sliding window, the front half of DEFLATE compression.

use crate::consts::{MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match { len: u16, dist: u16 },
}

/// Tunable matcher effort, mirroring zlib's level ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherParams {
    /// Maximum hash-chain links traversed per position.
    pub max_chain: usize,
    /// Stop searching early once a match of this length is found.
    pub good_len: usize,
    /// Use lazy matching (defer emission by one byte looking for better).
    pub lazy: bool,
    /// Matches at least this long skip the lazy search at the next byte.
    pub lazy_skip_len: usize,
}

impl MatcherParams {
    /// Parameters for a compression level 0..=9 (zlib-like ladder).
    ///
    /// Level 0 means *no matching at all* (zlib's stored semantics): the
    /// tokenizer emits every byte as a literal, and the block encoder is
    /// expected to fall back to stored blocks. Levels above 9 clamp to 9.
    pub fn for_level(level: u8) -> Self {
        match level.min(9) {
            0 => Self { max_chain: 0, good_len: 0, lazy: false, lazy_skip_len: 0 },
            1 => Self { max_chain: 4, good_len: 8, lazy: false, lazy_skip_len: 0 },
            2 => Self { max_chain: 8, good_len: 16, lazy: false, lazy_skip_len: 0 },
            3 => Self { max_chain: 32, good_len: 32, lazy: false, lazy_skip_len: 0 },
            4 => Self { max_chain: 16, good_len: 16, lazy: true, lazy_skip_len: 32 },
            5 => Self { max_chain: 32, good_len: 32, lazy: true, lazy_skip_len: 64 },
            6 => Self { max_chain: 128, good_len: 128, lazy: true, lazy_skip_len: 128 },
            7 => Self { max_chain: 256, good_len: 128, lazy: true, lazy_skip_len: 128 },
            8 => Self { max_chain: 1024, good_len: 258, lazy: true, lazy_skip_len: 258 },
            _ => Self { max_chain: 4096, good_len: 258, lazy: true, lazy_skip_len: 258 },
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    // Multiplicative hash of the next 3 bytes.
    let v = (data[pos] as u32) | ((data[pos + 1] as u32) << 8) | ((data[pos + 2] as u32) << 16);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain matcher state.
pub struct Matcher {
    /// head[h] = most recent position with hash h (+1, 0 = empty).
    head: Vec<u32>,
    /// prev[pos % WINDOW_SIZE] = previous position with the same hash (+1).
    prev: Vec<u32>,
    params: MatcherParams,
}

impl Matcher {
    pub fn new(params: MatcherParams) -> Self {
        Self { head: vec![0; HASH_SIZE], prev: vec![0; WINDOW_SIZE], params }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            self.prev[pos % WINDOW_SIZE] = self.head[h];
            self.head[h] = pos as u32 + 1;
        }
    }

    /// Longest match at `pos`, at least `min_len+1` long, or None.
    fn find_match(&self, data: &[u8], pos: usize, min_len: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = MAX_MATCH.min(data.len() - pos);
        if max_len < MIN_MATCH {
            return None;
        }
        let h = hash3(data, pos);
        let mut cand = self.head[h];
        let mut best_len = min_len;
        let mut best_dist = 0usize;
        let mut chain = self.params.max_chain;
        let window_floor = pos.saturating_sub(WINDOW_SIZE);

        while cand != 0 && chain > 0 {
            let cpos = (cand - 1) as usize;
            if cpos < window_floor || cpos >= pos {
                break;
            }
            // Quick reject: compare the byte just past the current best.
            if best_len < max_len && data[cpos + best_len] == data[pos + best_len] {
                let len = match_len(data, cpos, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cpos;
                    if len >= self.params.good_len || len == max_len {
                        break;
                    }
                }
            }
            cand = self.prev[cpos % WINDOW_SIZE];
            chain -= 1;
        }
        if best_dist > 0 && best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Read 8 bytes at `pos` as a little-endian word via a fixed-size copy.
/// Callers guarantee `pos + 8 <= data.len()`; the bounds check lives in
/// the slice indexing, with no fallible slice-to-array conversion.
#[inline]
fn read_u64_le(data: &[u8], pos: usize) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&data[pos..pos + 8]);
    u64::from_le_bytes(word)
}

#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    // Compare 8 bytes at a time. `b + max <= data.len()` (and `a < b`), so
    // the word reads below never run past the input.
    let mut i = 0usize;
    while i + 8 <= max {
        let x = read_u64_le(data, a + i);
        let y = read_u64_le(data, b + i);
        let diff = x ^ y;
        if diff != 0 {
            return i + (diff.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < max && data[a + i] == data[b + i] {
        i += 1;
    }
    i
}

/// Tokenize `data` into literals and matches using the given parameters.
///
/// The callback is invoked once per token in order; this avoids materializing
/// a token vector when the caller streams straight into an encoder.
pub fn tokenize(data: &[u8], params: MatcherParams, mut emit: impl FnMut(Token)) {
    let mut m = Matcher::new(params);
    let n = data.len();
    let mut pos = 0usize;
    // Pending lazy match carried from the previous position.
    let mut pending: Option<(usize, usize)> = None; // (len, dist) at pos-1

    while pos < n {
        let cur = m.find_match(data, pos, MIN_MATCH - 1);
        if params.lazy {
            match (pending.take(), cur) {
                (Some((plen, _pdist)), Some((clen, _))) if clen > plen + 1 => {
                    // Current match is better by at least two bytes:
                    // previous byte becomes a literal, re-pend the current
                    // match. A +1 gain is never worth deferring — the
                    // literal costs 8-9 fixed-Huffman bits while one extra
                    // match byte usually stays in the same length-code
                    // bucket and saves none.
                    emit(Token::Literal(data[pos - 1]));
                    pending = Some(cur.unwrap());
                    m.insert(data, pos);
                    pos += 1;
                    continue;
                }
                (Some((plen, pdist)), _) => {
                    // Previous match wins; emit it starting at pos-1.
                    emit(Token::Match { len: plen as u16, dist: pdist as u16 });
                    // Insert hash entries for covered positions.
                    let end = (pos - 1 + plen).min(n);
                    for p in pos..end {
                        m.insert(data, p);
                    }
                    pos = end;
                    continue;
                }
                (None, Some((clen, cdist))) => {
                    if clen >= params.lazy_skip_len {
                        // Long enough: take immediately.
                        emit(Token::Match { len: clen as u16, dist: cdist as u16 });
                        let end = (pos + clen).min(n);
                        m.insert(data, pos);
                        for p in pos + 1..end {
                            m.insert(data, p);
                        }
                        pos = end;
                    } else {
                        pending = Some((clen, cdist));
                        m.insert(data, pos);
                        pos += 1;
                    }
                    continue;
                }
                (None, None) => {
                    emit(Token::Literal(data[pos]));
                    m.insert(data, pos);
                    pos += 1;
                    continue;
                }
            }
        } else {
            // Greedy.
            if let Some((len, dist)) = cur {
                emit(Token::Match { len: len as u16, dist: dist as u16 });
                let end = (pos + len).min(n);
                m.insert(data, pos);
                for p in pos + 1..end {
                    m.insert(data, p);
                }
                pos = end;
            } else {
                emit(Token::Literal(data[pos]));
                m.insert(data, pos);
                pos += 1;
            }
        }
    }
    // Flush any trailing pending match.
    if let Some((plen, pdist)) = pending {
        emit(Token::Match { len: plen as u16, dist: pdist as u16 });
    }
}

/// Reconstruct original bytes from a token stream (reference decoder used in
/// tests and by the SZ3 backend verification).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: u8) {
        let mut tokens = Vec::new();
        tokenize(data, MatcherParams::for_level(level), |t| tokens.push(t));
        assert_eq!(detokenize(&tokens), data, "level {level}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for level in [1, 6, 9] {
            roundtrip(b"", level);
            roundtrip(b"a", level);
            roundtrip(b"ab", level);
            roundtrip(b"abc", level);
        }
    }

    #[test]
    fn repeated_data_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc";
        let mut tokens = Vec::new();
        tokenize(data, MatcherParams::for_level(6), |t| tokens.push(t));
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match token"
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // Classic RLE-via-LZ77: dist 1, long len.
        let data = vec![0x41u8; 1000];
        let mut tokens = Vec::new();
        tokenize(&data, MatcherParams::for_level(6), |t| tokens.push(t));
        assert!(tokens.len() < 20, "RLE data should compress to few tokens");
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn all_levels_roundtrip_mixed_data() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.push((i % 251) as u8);
            if i % 7 == 0 {
                data.extend_from_slice(b"common substring here");
            }
        }
        for level in 1..=9 {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn matches_never_exceed_window() {
        let mut data = vec![0u8; 40_000];
        // Plant identical blocks farther apart than the window.
        for i in 0..64 {
            data[i] = 0xAB;
            data[39_000 + i] = 0xAB;
        }
        let mut tokens = Vec::new();
        tokenize(&data, MatcherParams::for_level(9), |t| tokens.push(t));
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW_SIZE);
            }
        }
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn lazy_beats_greedy_on_crafted_input() {
        // "ab" then "abcde" repeated: lazy matching should pick the longer
        // match starting one byte later at least as well as greedy.
        let data = b"xabyabcdez_abcdez_abcdez_abcdez".repeat(20);
        let mut greedy = Vec::new();
        tokenize(&data, MatcherParams { lazy: false, ..MatcherParams::for_level(9) }, |t| {
            greedy.push(t)
        });
        let mut lazy = Vec::new();
        tokenize(&data, MatcherParams::for_level(9), |t| lazy.push(t));
        assert_eq!(detokenize(&greedy), data);
        assert_eq!(detokenize(&lazy), data);
        assert!(lazy.len() <= greedy.len() + 1);
    }

    #[test]
    fn match_len_helper() {
        let data = b"abcdefghabcdefgX";
        assert_eq!(match_len(data, 0, 8, 8), 7);
        assert_eq!(match_len(data, 0, 0, 16), 16);
    }

    #[test]
    fn match_len_into_short_tail() {
        // The match extends to the very last byte of the input, with the
        // comparison crossing from the 8-byte word loop into a tail shorter
        // than 8 bytes (13 = one word + 5 tail bytes). `max` equals the
        // remaining input so every read must stay in bounds.
        let pattern = b"0123456789abc"; // 13 bytes
        let mut data = Vec::new();
        data.extend_from_slice(pattern);
        data.extend_from_slice(pattern);
        assert_eq!(data.len(), 26);
        assert_eq!(match_len(&data, 0, 13, 13), 13);
        // Same, but the tail differs at the final byte.
        data[25] = b'X';
        assert_eq!(match_len(&data, 0, 13, 13), 12);
        // Tail shorter than a word from the start (no word-loop iteration).
        assert_eq!(match_len(&data, 0, 13, 5), 5);
    }

    #[test]
    fn level0_params_disable_matching() {
        let p = MatcherParams::for_level(0);
        assert_eq!(p.max_chain, 0);
        assert!(!p.lazy);
        // Highly repetitive data still tokenizes to pure literals.
        let data = b"abcabcabcabcabcabcabcabc".repeat(8);
        let mut tokens = Vec::new();
        tokenize(&data, p, |t| tokens.push(t));
        assert_eq!(tokens.len(), data.len());
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn levels_above_nine_clamp_to_nine() {
        assert_eq!(MatcherParams::for_level(10), MatcherParams::for_level(9));
        assert_eq!(MatcherParams::for_level(255), MatcherParams::for_level(9));
    }
}
