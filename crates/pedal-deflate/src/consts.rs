//! Static tables from RFC 1951 section 3.2.5: length/distance code
//! parameters and the code-length-code symbol permutation.

/// Number of literal/length symbols (0..=285).
pub const NUM_LITLEN: usize = 286;
/// Number of distance symbols (0..=29).
pub const NUM_DIST: usize = 30;
/// Number of code-length-code symbols.
pub const NUM_CLC: usize = 19;
/// End-of-block symbol.
pub const EOB: u16 = 256;
/// Maximum code length for literal/length and distance alphabets.
pub const MAX_CODE_LEN: usize = 15;
/// Maximum code length for the code-length alphabet.
pub const MAX_CLC_LEN: usize = 7;
/// Minimum/maximum LZ77 match length.
pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;
/// LZ77 window size.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// Base match length for each length code (codes 257..=285).
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits for each length code.
pub const LENGTH_EXTRA: [u8; 29] =
    [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0];

/// Base distance for each distance code (codes 0..=29).
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits for each distance code.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
pub const CLC_ORDER: [usize; 19] =
    [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// Map a match length (3..=258) to its length code index (0..=28, i.e.
/// symbol 257 + index).
#[inline]
pub fn length_code(len: usize) -> usize {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Binary-search-free lookup: the table is small enough to scan backwards
    // rarely, but a 256-entry LUT is faster and branch-free.
    LENGTH_TO_CODE[len - MIN_MATCH] as usize
}

/// Map a distance (1..=32768) to its distance code (0..=29).
#[inline]
pub fn dist_code(dist: usize) -> usize {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    if dist <= 256 {
        DIST_TO_CODE_LO[dist - 1] as usize
    } else {
        DIST_TO_CODE_HI[(dist - 1) >> 7] as usize
    }
}

/// LUT: match length - 3 -> length code index.
pub static LENGTH_TO_CODE: [u8; 256] = build_length_lut();

const fn build_length_lut() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut code = 0usize;
    let mut len = 0usize; // len is (match_len - 3)
    while len < 256 {
        // Advance code while len+3 exceeds the range of the current code.
        while code + 1 < 29 && (len + 3) >= LENGTH_BASE[code + 1] as usize {
            code += 1;
        }
        // Special case: length 258 is code 28 exactly; lengths 227..=257 are
        // code 27 (base 227, 5 extra bits).
        if len + 3 == 258 {
            lut[len] = 28;
        } else if code == 28 {
            lut[len] = 27;
        } else {
            lut[len] = code as u8;
        }
        len += 1;
    }
    lut
}

/// LUT for distances 1..=256.
pub static DIST_TO_CODE_LO: [u8; 256] = build_dist_lut_lo();
/// LUT for distances 257..=32768, indexed by (dist-1)>>7.
pub static DIST_TO_CODE_HI: [u8; 256] = build_dist_lut_hi();

const fn dist_code_slow(dist: usize) -> u8 {
    let mut code = 29usize;
    loop {
        if dist >= DIST_BASE[code] as usize {
            return code as u8;
        }
        code -= 1;
    }
}

const fn build_dist_lut_lo() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut d = 1usize;
    while d <= 256 {
        lut[d - 1] = dist_code_slow(d);
        d += 1;
    }
    lut
}

const fn build_dist_lut_hi() -> [u8; 256] {
    let mut lut = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let dist = (i << 7) + 1;
        lut[i] = dist_code_slow(if dist < 257 { 257 } else { dist });
        i += 1;
    }
    lut
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_code_bases_roundtrip() {
        for (code, &base) in LENGTH_BASE.iter().enumerate() {
            assert_eq!(length_code(base as usize), code, "base {base}");
        }
    }

    #[test]
    fn length_code_covers_full_range() {
        for len in MIN_MATCH..=MAX_MATCH {
            let code = length_code(len);
            let base = LENGTH_BASE[code] as usize;
            let extra = LENGTH_EXTRA[code] as usize;
            assert!(len >= base, "len {len} below base of code {code}");
            assert!(
                len - base < (1 << extra) || (code == 28 && len == 258),
                "len {len} out of range for code {code}"
            );
        }
    }

    #[test]
    fn length_258_is_code_28() {
        assert_eq!(length_code(258), 28);
        // 257 must use code 27 with extra bits, not code 28.
        assert_eq!(length_code(257), 27);
    }

    #[test]
    fn dist_code_bases_roundtrip() {
        for (code, &base) in DIST_BASE.iter().enumerate() {
            assert_eq!(dist_code(base as usize), code, "base {base}");
        }
    }

    #[test]
    fn dist_code_covers_full_range() {
        for dist in 1..=WINDOW_SIZE {
            let code = dist_code(dist);
            let base = DIST_BASE[code] as usize;
            let extra = DIST_EXTRA[code] as usize;
            assert!(dist >= base);
            assert!(dist - base < (1 << extra));
        }
    }
}
