//! Seeded random round-trip tests for the DEFLATE implementation.
//!
//! Ported from the original proptest suite to an in-tree case generator:
//! every case is derived from a fixed-seed PCG32 stream, so failures are
//! reproducible by case index with no external dependency. Build with
//! `--features fuzz` to multiply the case counts for longer runs.

use pedal_deflate::{compress, decompress, max_compressed_len, Level};
use pedal_dpu::Pcg32;

fn cases(base: usize) -> usize {
    if cfg!(feature = "fuzz") {
        base * 16
    } else {
        base
    }
}

fn arbitrary_vec(rng: &mut Pcg32, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn roundtrip_arbitrary_bytes() {
    let mut rng = Pcg32::seed_from_u64(0xDEF1_A7E0);
    for case in 0..cases(32) {
        let data = arbitrary_vec(&mut rng, 8192);
        for level in [Level::STORED, Level::FAST, Level::DEFAULT, Level::BEST] {
            let enc = compress(&data, level);
            assert!(enc.len() <= max_compressed_len(data.len()), "case {case}");
            assert_eq!(decompress(&enc).unwrap(), data, "case {case}");
        }
    }
}

#[test]
fn roundtrip_low_entropy() {
    let mut rng = Pcg32::seed_from_u64(0xDEF1_A7E1);
    for case in 0..cases(64) {
        // Run-length structured data exercises overlapping matches.
        let mut data = vec![rng.gen::<u8>()];
        for _ in 0..rng.gen_range(0usize..64) {
            let (b, n) = (rng.gen::<u8>(), rng.gen_range(1usize..512));
            data.extend(std::iter::repeat_n(b, n));
        }
        let enc = compress(&data, Level::DEFAULT);
        assert_eq!(decompress(&enc).unwrap(), data, "case {case}");
    }
}

#[test]
fn roundtrip_textlike() {
    let mut rng = Pcg32::seed_from_u64(0xDEF1_A7E2);
    for case in 0..cases(32) {
        let n_words = rng.gen_range(0usize..400);
        let words: Vec<String> = (0..n_words)
            .map(|_| {
                let len = rng.gen_range(1usize..=12);
                (0..len).map(|_| (b'a' + rng.gen_range(0u8..26)) as char).collect()
            })
            .collect();
        let data = words.join(" ").into_bytes();
        for level in [Level::FAST, Level::BEST] {
            let enc = compress(&data, level);
            assert_eq!(decompress(&enc).unwrap(), data, "case {case}");
        }
    }
}

#[test]
fn decoder_never_panics_on_garbage() {
    let mut rng = Pcg32::seed_from_u64(0xDEF1_A7E3);
    for _ in 0..cases(128) {
        let data = arbitrary_vec(&mut rng, 2048);
        // Must return Ok or Err, never panic or loop forever.
        let _ = pedal_deflate::decompress_with_limit(&data, 1 << 20);
    }
}

#[test]
fn truncation_always_detected() {
    let mut rng = Pcg32::seed_from_u64(0xDEF1_A7E4);
    for case in 0..cases(64) {
        let len = rng.gen_range(64usize..1024);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let enc = compress(&data, Level::DEFAULT);
        // Removing the final byte must not yield a silently-correct result
        // that differs from the input... it should simply error or produce
        // a prefix-incomplete stream (EOF). We only assert no panic and that
        // the full stream round-trips.
        let _ = decompress(&enc[..enc.len() - 1]);
        assert_eq!(decompress(&enc).unwrap(), data, "case {case}");
    }
}
