//! Property-based round-trip tests for the DEFLATE implementation.

use pedal_deflate::{compress, decompress, max_compressed_len, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        for level in [Level::STORED, Level::FAST, Level::DEFAULT, Level::BEST] {
            let enc = compress(&data, level);
            prop_assert!(enc.len() <= max_compressed_len(data.len()));
            prop_assert_eq!(&decompress(&enc).unwrap(), &data);
        }
    }

    #[test]
    fn roundtrip_low_entropy(
        seed in any::<u8>(),
        runs in proptest::collection::vec((any::<u8>(), 1usize..512), 0..64),
    ) {
        // Run-length structured data exercises overlapping matches.
        let mut data = vec![seed];
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let enc = compress(&data, Level::DEFAULT);
        prop_assert_eq!(decompress(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_textlike(words in proptest::collection::vec("[a-z]{1,12}", 0..400)) {
        let data = words.join(" ").into_bytes();
        for level in [Level::FAST, Level::BEST] {
            let enc = compress(&data, level);
            prop_assert_eq!(&decompress(&enc).unwrap(), &data);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Must return Ok or Err, never panic or loop forever.
        let _ = pedal_deflate::decompress_with_limit(&data, 1 << 20);
    }

    #[test]
    fn truncation_always_detected(data in proptest::collection::vec(any::<u8>(), 64..1024)) {
        let enc = compress(&data, Level::DEFAULT);
        // Removing the final byte must not yield a silently-correct result
        // that differs from the input... it should simply error or produce
        // a prefix-incomplete stream (EOF). We only assert no panic and that
        // the full stream round-trips.
        let _ = decompress(&enc[..enc.len() - 1]);
        prop_assert_eq!(&decompress(&enc).unwrap(), &data);
    }
}
