//! Virtual time for the simulated DPU world.
//!
//! All performance results in the benchmark harnesses are expressed in
//! *virtual nanoseconds* produced by the calibrated cost model, so every
//! figure is reproducible bit-for-bit on any host. Real compression work
//! still happens (the codecs run for real); only *time* is virtual.

use std::sync::atomic::{AtomicU64, Ordering};

/// A virtual-time duration in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }
    pub fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }
    /// Convert a (possibly fractional) millisecond figure.
    pub fn from_millis_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0);
        Self((ms * 1e6).round() as u64)
    }
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

/// Adaptive unit rendering shared by [`SimDuration`] and [`SimInstant`]:
/// `742ns`, `12.50µs`, `1.24ms`, `2.50s`.
fn fmt_ns(ns: u64, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.2}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.2}s", ns as f64 / 1e9)
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_ns(self.0, f)
    }
}

/// Instants render as time since the simulation epoch.
impl std::fmt::Display for SimInstant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_ns(self.0, f)
    }
}

/// An absolute virtual-time instant (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimInstant(pub u64);

impl SimInstant {
    pub const EPOCH: SimInstant = SimInstant(0);

    pub fn elapsed_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

/// Per-entity virtual clock. Each MPI rank / DPU owns one; message
/// timestamps merge clocks in the usual Lamport fashion (`merge` takes the
/// max), which is sufficient because our communication patterns are
/// deterministic.
#[derive(Debug)]
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        Self { now: AtomicU64::new(0) }
    }

    pub fn starting_at(t: SimInstant) -> Self {
        Self { now: AtomicU64::new(t.0) }
    }

    pub fn now(&self) -> SimInstant {
        SimInstant(self.now.load(Ordering::Acquire))
    }

    /// Advance by a duration, returning the new now.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        SimInstant(self.now.fetch_add(d.0, Ordering::AcqRel) + d.0)
    }

    /// Merge an external timestamp: now = max(now, t). Returns the new now.
    pub fn merge(&self, t: SimInstant) -> SimInstant {
        let mut cur = self.now.load(Ordering::Acquire);
        while cur < t.0 {
            match self.now.compare_exchange_weak(cur, t.0, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return SimInstant(t.0),
                Err(actual) => cur = actual,
            }
        }
        SimInstant(cur)
    }

    /// Reset to the epoch (between benchmark repetitions).
    pub fn reset(&self) {
        self.now.store(0, Ordering::Release);
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_convert() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert!((SimDuration::from_millis_f64(1.5).as_millis_f64() - 1.5).abs() < 1e-9);
        assert_eq!(
            SimDuration::from_millis(1) + SimDuration::from_micros(500),
            SimDuration::from_micros(1_500)
        );
    }

    #[test]
    fn clock_advances_and_merges() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimInstant::EPOCH);
        c.advance(SimDuration::from_millis(10));
        assert_eq!(c.now().0, 10_000_000);
        // Merge with an older timestamp: no change.
        c.merge(SimInstant(5));
        assert_eq!(c.now().0, 10_000_000);
        // Merge with a newer one: jumps forward.
        c.merge(SimInstant(42_000_000));
        assert_eq!(c.now().0, 42_000_000);
    }

    #[test]
    fn merge_is_monotonic_under_contention() {
        let c = std::sync::Arc::new(SimClock::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.merge(SimInstant(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().0, 7999);
    }

    #[test]
    fn instant_arithmetic() {
        let a = SimInstant(100);
        let b = a + SimDuration(50);
        assert_eq!(b.elapsed_since(a), SimDuration(50));
        assert_eq!(a.elapsed_since(b), SimDuration(0)); // saturating
    }

    #[test]
    fn display_picks_adaptive_units() {
        assert_eq!(SimDuration(742).to_string(), "742ns");
        assert_eq!(SimDuration(12_500).to_string(), "12.50µs");
        assert_eq!(SimDuration(1_240_000).to_string(), "1.24ms");
        assert_eq!(SimDuration(2_500_000_000).to_string(), "2.50s");
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimInstant(1_240_000).to_string(), "1.24ms");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)].into_iter().sum();
        assert_eq!(total, SimDuration(6));
    }
}
