//! Small deterministic PRNG for dataset synthesis and test-case generation.
//!
//! PCG32 (O'Neill, "PCG: A Family of Simple Fast Space-Efficient
//! Statistically Good Algorithms for Random Number Generation"): one 64-bit
//! LCG state, xorshift-rotate output. Seeded from a single `u64` via
//! SplitMix64 so nearby seeds still give uncorrelated streams. Every output
//! is a pure function of the seed, which is what the workspace actually
//! needs — deterministic datasets and reproducible test cases — not
//! cryptographic quality.

/// A PCG-XSH-RR 64/32 generator.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Seed deterministically from a single value (mirrors
    /// `StdRng::seed_from_u64` call sites).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let initstate = splitmix64(&mut s);
        let initseq = splitmix64(&mut s);
        let mut rng = Pcg32 { state: 0, inc: (initseq << 1) | 1 };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample uniformly from a range, like `rand::Rng::gen_range`.
    pub fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        T::sample(range, self)
    }

    /// An unbiased uniform draw from `[0, bound)` (Lemire-style rejection).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the draw exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Generate a value of a primitive type, like `rand::Rng::gen`.
    pub fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let v = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types producible by [`Pcg32::gen`].
pub trait SampleUniform {
    fn sample(rng: &mut Pcg32) -> Self;
}

impl SampleUniform for u8 {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_u32() as u8
    }
}

impl SampleUniform for u16 {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_u32() as u16
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for u64 {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_f64()
    }
}

impl SampleUniform for bool {
    fn sample(rng: &mut Pcg32) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges accepted by [`Pcg32::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Pcg32) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Pcg32) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Pcg32) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain; nothing here needs it.
                (lo as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Only f64 gets a float impl: a second float impl would make bare float
// literals at `gen_range` call sites ambiguous.
impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Pcg32) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed_from_u64(1);
        let mut b = Pcg32::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/64 equal");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Pcg32::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_varies() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut buf = [0u8; 33];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
