//! A minimal clone-cheap immutable byte buffer.
//!
//! Stand-in for the `bytes` crate's `Bytes`: the MPI runtime hands the same
//! payload to several ranks (broadcast trees, rendezvous retries) and needs
//! O(1) clones without aliasing mutable state. An `Arc<[u8]>` gives exactly
//! that; slicing/windowing is not needed by any caller in this workspace.

use std::sync::Arc;

/// Immutable, reference-counted byte buffer with O(1) `clone`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation is shared between instances, but an
    /// empty `Arc<[u8]>` is as cheap as it gets).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap a static slice. Copies once; the name mirrors `bytes::Bytes`
    /// so call sites read the same.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copy the contents out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.to_vec(), b"abc");
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from(&b"hello"[..]);
        assert_eq!(a.len(), 5);
        assert_eq!(a, Bytes::from(b"hello".to_vec()));
    }
}
