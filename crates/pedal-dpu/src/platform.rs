//! BlueField platform descriptors: SoC, memory, network, and the C-Engine
//! capability matrix of the paper's Table II.

/// The two DPU generations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// NVIDIA BlueField-2: 8× ARM Cortex-A72 @ 2.75 GHz, DDR4,
    /// ConnectX-6 (200 Gb/s), C-Engine with DEFLATE compress + decompress.
    BlueField2,
    /// NVIDIA BlueField-3: 16× ARM Cortex-A78, DDR5, ConnectX-7 (400 Gb/s),
    /// C-Engine with DEFLATE/LZ4 *decompression only*.
    BlueField3,
}

impl Platform {
    pub const ALL: [Platform; 2] = [Platform::BlueField2, Platform::BlueField3];

    pub fn name(self) -> &'static str {
        match self {
            Platform::BlueField2 => "BlueField-2",
            Platform::BlueField3 => "BlueField-3",
        }
    }

    pub fn short_name(self) -> &'static str {
        match self {
            Platform::BlueField2 => "BF2",
            Platform::BlueField3 => "BF3",
        }
    }

    /// Static hardware description.
    pub fn spec(self) -> &'static PlatformSpec {
        match self {
            Platform::BlueField2 => &BF2_SPEC,
            Platform::BlueField3 => &BF3_SPEC,
        }
    }
}

/// Hardware description of a BlueField DPU (paper §II-A and §V-B).
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    pub soc_cores: usize,
    pub core_model: &'static str,
    pub core_ghz: f64,
    pub dram: &'static str,
    pub dram_gb: usize,
    /// Network line rate in Gb/s.
    pub network_gbps: u64,
    pub nic: &'static str,
    /// Relative single-core SoC throughput vs BlueField-2 (A78 vs A72).
    pub soc_speed_factor: f64,
    /// Whether the C-Engine exists and what it can do.
    pub cengine: CEngineSpec,
}

/// What the hardware compression engine supports (Table II).
#[derive(Debug, Clone, Copy)]
pub struct CEngineSpec {
    pub deflate_compress: bool,
    pub deflate_decompress: bool,
    pub lz4_compress: bool,
    pub lz4_decompress: bool,
}

pub static BF2_SPEC: PlatformSpec = PlatformSpec {
    soc_cores: 8,
    core_model: "ARM Cortex-A72",
    core_ghz: 2.75,
    dram: "DDR4",
    dram_gb: 16,
    network_gbps: 200,
    nic: "ConnectX-6",
    soc_speed_factor: 1.0,
    cengine: CEngineSpec {
        deflate_compress: true,
        deflate_decompress: true,
        lz4_compress: false,
        lz4_decompress: false,
    },
};

pub static BF3_SPEC: PlatformSpec = PlatformSpec {
    soc_cores: 16,
    core_model: "ARM Cortex-A78",
    core_ghz: 3.0,
    dram: "DDR5",
    dram_gb: 16,
    network_gbps: 400,
    nic: "ConnectX-7",
    // Paper §V-D observes ~40% lower SoC communication time on BF3.
    soc_speed_factor: 5.0 / 3.0,
    cengine: CEngineSpec {
        deflate_compress: false,
        deflate_decompress: true,
        lz4_compress: false,
        lz4_decompress: true,
    },
};

/// Compression algorithms the stack knows about (paper Table I, plus
/// the pco numeric/columnar codec added on top of the paper's four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    Deflate,
    Zlib,
    Lz4,
    Sz3,
    /// Numeric columnar codec (delta + binning + rANS), lossless and
    /// bit-exact. Pure SoC software: no BlueField engine accelerates it.
    Pco,
}

impl Algorithm {
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Deflate, Algorithm::Zlib, Algorithm::Lz4, Algorithm::Sz3, Algorithm::Pco];

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Deflate => "DEFLATE",
            Algorithm::Zlib => "zlib",
            Algorithm::Lz4 => "LZ4",
            Algorithm::Sz3 => "SZ3",
            Algorithm::Pco => "pco",
        }
    }

    pub fn is_lossy(self) -> bool {
        matches!(self, Algorithm::Sz3)
    }
}

/// Where an operation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// ARM SoC cores.
    Soc,
    /// Hardware compression engine (via the simulated DOCA SDK).
    CEngine,
}

impl Placement {
    pub fn name(self) -> &'static str {
        match self {
            Placement::Soc => "SoC",
            Placement::CEngine => "C-Engine",
        }
    }
}

/// Direction of a compression operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Compress,
    Decompress,
}

impl CEngineSpec {
    /// Does this engine support `algo` in `dir`? zlib and SZ3 ride on the
    /// engine's DEFLATE support (PEDAL's extension, Table III italics).
    pub fn supports(&self, algo: Algorithm, dir: Direction) -> bool {
        match (algo, dir) {
            (Algorithm::Deflate | Algorithm::Zlib | Algorithm::Sz3, Direction::Compress) => {
                self.deflate_compress
            }
            (Algorithm::Deflate | Algorithm::Zlib | Algorithm::Sz3, Direction::Decompress) => {
                self.deflate_decompress
            }
            (Algorithm::Lz4, Direction::Compress) => self.lz4_compress,
            (Algorithm::Lz4, Direction::Decompress) => self.lz4_decompress,
            // No BlueField generation implements the pco transform in
            // hardware: the capability fallback must always land it on
            // the SoC, in both directions.
            (Algorithm::Pco, _) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_capability_matrix() {
        // BF2: DEFLATE compression + decompression on C-Engine.
        let bf2 = Platform::BlueField2.spec().cengine;
        assert!(bf2.supports(Algorithm::Deflate, Direction::Compress));
        assert!(bf2.supports(Algorithm::Deflate, Direction::Decompress));
        assert!(!bf2.supports(Algorithm::Lz4, Direction::Compress));
        assert!(!bf2.supports(Algorithm::Lz4, Direction::Decompress));

        // BF3: decompression only; LZ4 decompression appears.
        let bf3 = Platform::BlueField3.spec().cengine;
        assert!(!bf3.supports(Algorithm::Deflate, Direction::Compress));
        assert!(bf3.supports(Algorithm::Deflate, Direction::Decompress));
        assert!(!bf3.supports(Algorithm::Lz4, Direction::Compress));
        assert!(bf3.supports(Algorithm::Lz4, Direction::Decompress));
    }

    #[test]
    fn table_iii_extensions_ride_on_deflate() {
        // PEDAL extends zlib and SZ3 onto the engine wherever DEFLATE goes.
        let bf2 = Platform::BlueField2.spec().cengine;
        assert!(bf2.supports(Algorithm::Zlib, Direction::Compress));
        assert!(bf2.supports(Algorithm::Sz3, Direction::Compress));
        let bf3 = Platform::BlueField3.spec().cengine;
        assert!(!bf3.supports(Algorithm::Zlib, Direction::Compress));
        assert!(bf3.supports(Algorithm::Zlib, Direction::Decompress));
        assert!(bf3.supports(Algorithm::Sz3, Direction::Decompress));
    }

    #[test]
    fn no_engine_accelerates_pco() {
        for p in Platform::ALL {
            for dir in [Direction::Compress, Direction::Decompress] {
                assert!(!p.spec().cengine.supports(Algorithm::Pco, dir), "{p:?} {dir:?}");
            }
        }
    }

    #[test]
    fn platform_specs_match_paper() {
        let bf2 = Platform::BlueField2.spec();
        assert_eq!(bf2.soc_cores, 8);
        assert_eq!(bf2.network_gbps, 200);
        assert_eq!(bf2.core_ghz, 2.75);
        let bf3 = Platform::BlueField3.spec();
        assert_eq!(bf3.soc_cores, 16);
        assert_eq!(bf3.network_gbps, 400);
        assert!(bf3.soc_speed_factor > 1.5 && bf3.soc_speed_factor < 1.8);
    }
}
