//! The calibrated virtual-time cost model.
//!
//! Absolute nanoseconds on real BlueField silicon are unreproducible without
//! the hardware, so this model is calibrated to reproduce the *relative*
//! behaviour the paper reports (DESIGN.md §2.2 lists every target band):
//! who wins, by what factor, and where the crossovers sit. All constants are
//! in one place below, each annotated with the paper observation it serves.
//!
//! Throughputs are in MB/s of *original* (uncompressed) data for
//! compression and of *produced* data for decompression; fixed overheads
//! are per-operation.

use crate::clock::SimDuration;
use crate::platform::{Algorithm, Direction, Placement, Platform};

const MB: f64 = 1_000_000.0;

/// Convert (bytes, MB/s) into a virtual duration.
#[inline]
fn time_for(bytes: usize, mb_per_s: f64) -> SimDuration {
    debug_assert!(mb_per_s > 0.0);
    SimDuration::from_millis_f64(bytes as f64 / MB / mb_per_s * 1e3)
}

/// SoC-side throughput constants for BlueField-2 (BlueField-3 scales by
/// `soc_speed_factor`, reproducing the paper's ~40% faster BF3 SoC).
#[derive(Debug, Clone, Copy)]
pub struct SocRates {
    pub deflate_compress: f64,
    pub deflate_decompress: f64,
    pub lz4_compress: f64,
    pub lz4_decompress: f64,
    /// Adler-32 / header-trailer work for the zlib split design.
    pub checksum: f64,
    /// SZ3 core stages (predict + quantize + Huffman), per input byte.
    pub sz3_core_compress: f64,
    /// SZ3 core inverse, per output byte.
    pub sz3_core_decompress: f64,
    /// SZ3's fast native lossless backend (the zstd stand-in).
    pub zs_compress: f64,
    pub zs_decompress: f64,
    /// pco numeric codec (delta + binning + rANS). SoC-only: no
    /// BlueField engine implements the transform.
    pub pco_compress: f64,
    pub pco_decompress: f64,
    pub memcpy: f64,
}

/// BlueField-2 SoC baseline rates (MB/s).
pub const BF2_SOC: SocRates = SocRates {
    // ~35 MB/s single-stream DEFLATE on A72 — calibrated so the BF2
    // C-Engine shows the paper's 101.8x compression advantage (Fig. 8).
    deflate_compress: 35.0,
    deflate_decompress: 200.0,
    lz4_compress: 400.0,
    lz4_decompress: 1500.0,
    checksum: 16_000.0,
    // Real SZ3 on an A72 runs tens of MB/s — and this rate is what makes
    // BF2's SoC and C-Engine lossy totals comparable (Fig. 9).
    sz3_core_compress: 45.0,
    sz3_core_decompress: 75.0,
    zs_compress: 500.0,
    zs_decompress: 1500.0,
    // Sort-dominated encode, table-driven decode: rANS coders land in
    // the tens-of-MB/s band on an A72 — the same ballpark as DEFLATE
    // (35 MB/s), which keeps the pco-vs-DEFLATE ratio comparison at
    // comparable virtual-time cost rather than trading time for ratio.
    pco_compress: 55.0,
    pco_decompress: 220.0,
    memcpy: 10_000.0,
};

/// C-Engine rates and per-job overheads.
#[derive(Debug, Clone, Copy)]
pub struct CEngineRates {
    pub compress_mbps: f64,
    pub decompress_mbps: f64,
    /// Per-job submission/completion overhead.
    pub compress_overhead: SimDuration,
    pub decompress_overhead: SimDuration,
    /// LZ4 decompression rate (BF3 only).
    pub lz4_decompress_mbps: f64,
}

/// BlueField-2 C-Engine: tuned for Fig. 8 (101.8x compress / 11.2x
/// decompress over the SoC at 5.1 MB).
pub const BF2_CENGINE: CEngineRates = CEngineRates {
    compress_mbps: 3_700.0,
    decompress_mbps: 4_000.0,
    compress_overhead: SimDuration(60_000),      // 60 us
    decompress_overhead: SimDuration(1_500_000), // 1.5 ms
    lz4_decompress_mbps: 0.0,                    // unsupported
};

/// BlueField-3 C-Engine: decompression only; tuned for the paper's
/// 1.78x (5.1 MB) and 1.28x (48.84 MB) advantages over BF2's engine.
pub const BF3_CENGINE: CEngineRates = CEngineRates {
    compress_mbps: 0.0, // unsupported — PEDAL falls back to the SoC
    decompress_mbps: 4_400.0,
    compress_overhead: SimDuration(0),
    decompress_overhead: SimDuration(400_000), // 0.4 ms
    lz4_decompress_mbps: 6_000.0,
};

/// Fixed and per-byte overheads around the engines.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRates {
    /// One-time DOCA context/engine initialization. The paper attributes
    /// ~94% of small-message runs to this plus buffer prep (Fig. 7a).
    pub doca_init: SimDuration,
    /// Mapping a buffer into DOCA-operable memory: base + per-MB.
    pub buffer_prep_base: SimDuration,
    pub buffer_prep_per_mb: SimDuration,
    /// Plain SoC allocation (baseline SoC designs pay this per message).
    pub host_alloc_base: SimDuration,
    pub host_alloc_per_mb: SimDuration,
    /// Per-message cost of a warm memory-pool hit under PEDAL.
    pub pool_hit: SimDuration,
    /// How many intermediate buffers a lossy (SZ3) run allocates when not
    /// pooled (input map, quant codes, outliers, encoded stream).
    pub lossy_intermediate_buffers: u64,
}

pub const BF2_OVERHEADS: OverheadRates = OverheadRates {
    doca_init: SimDuration(80_000_000), // 80 ms
    buffer_prep_base: SimDuration(400_000),
    buffer_prep_per_mb: SimDuration(1_500_000),
    host_alloc_base: SimDuration(50_000),
    host_alloc_per_mb: SimDuration(1_200_000),
    pool_hit: SimDuration(20_000),
    lossy_intermediate_buffers: 4,
};

pub const BF3_OVERHEADS: OverheadRates = OverheadRates {
    doca_init: SimDuration(75_000_000), // 75 ms
    buffer_prep_base: SimDuration(350_000),
    buffer_prep_per_mb: SimDuration(1_200_000),
    host_alloc_base: SimDuration(40_000),
    host_alloc_per_mb: SimDuration(900_000),
    pool_hit: SimDuration(15_000),
    lossy_intermediate_buffers: 4,
};

/// PCIe link between the host CPU and the DPU (the paper's §VI host-offload
/// scenario: "It is crucial to assess the overhead associated with data
/// movement between the host and DPU").
#[derive(Debug, Clone, Copy)]
pub struct PcieRates {
    /// DMA doorbell + completion latency.
    pub latency: SimDuration,
    /// Effective DMA bandwidth in MB/s.
    pub bandwidth_mbps: f64,
}

/// BlueField-2: PCIe Gen4 x16 (~26 GB/s raw, ~20 GB/s effective DMA).
pub const BF2_PCIE: PcieRates = PcieRates { latency: SimDuration(1_200), bandwidth_mbps: 20_000.0 };

/// BlueField-3: PCIe Gen5 x16 (~50 GB/s raw, ~40 GB/s effective DMA).
pub const BF3_PCIE: PcieRates = PcieRates { latency: SimDuration(1_000), bandwidth_mbps: 40_000.0 };

/// Network model: per-hop latency + line-rate serialization.
#[derive(Debug, Clone, Copy)]
pub struct NetworkRates {
    pub latency: SimDuration,
    /// Effective bandwidth in MB/s (line rate with protocol efficiency).
    pub bandwidth_mbps: f64,
}

pub const BF2_NETWORK: NetworkRates = NetworkRates {
    latency: SimDuration(2_500), // 2.5 us
    bandwidth_mbps: 23_000.0,    // ~92% of 200 Gb/s
};

pub const BF3_NETWORK: NetworkRates = NetworkRates {
    latency: SimDuration(2_000),
    bandwidth_mbps: 46_000.0, // ~92% of 400 Gb/s
};

/// The assembled per-platform cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub platform: Platform,
    pub soc: SocRates,
    /// SoC speed multiplier (1.0 on BF2).
    pub soc_factor: f64,
    pub cengine: CEngineRates,
    pub overheads: OverheadRates,
    pub network: NetworkRates,
    pub pcie: PcieRates,
}

impl CostModel {
    pub fn for_platform(platform: Platform) -> Self {
        match platform {
            Platform::BlueField2 => Self {
                platform,
                soc: BF2_SOC,
                soc_factor: 1.0,
                cengine: BF2_CENGINE,
                overheads: BF2_OVERHEADS,
                network: BF2_NETWORK,
                pcie: BF2_PCIE,
            },
            Platform::BlueField3 => Self {
                platform,
                soc: BF2_SOC,
                soc_factor: platform.spec().soc_speed_factor,
                cengine: BF3_CENGINE,
                overheads: BF3_OVERHEADS,
                network: BF3_NETWORK,
                pcie: BF3_PCIE,
            },
        }
    }

    /// One-time DOCA initialization cost.
    pub fn doca_init(&self) -> SimDuration {
        self.overheads.doca_init
    }

    /// Map `bytes` into DOCA-operable memory.
    pub fn buffer_prep(&self, bytes: usize) -> SimDuration {
        self.overheads.buffer_prep_base
            + SimDuration((self.overheads.buffer_prep_per_mb.0 as f64 * bytes as f64 / MB) as u64)
    }

    /// Plain allocation of `n_buffers` buffers of `bytes` on the SoC.
    pub fn host_alloc(&self, bytes: usize, n_buffers: u64) -> SimDuration {
        let one = self.overheads.host_alloc_base
            + SimDuration((self.overheads.host_alloc_per_mb.0 as f64 * bytes as f64 / MB) as u64);
        one * n_buffers
    }

    /// Per-message cost of reusing a pooled buffer.
    pub fn pool_hit(&self) -> SimDuration {
        self.overheads.pool_hit
    }

    /// SoC-side lossless operation (per the *processed* byte count: input
    /// bytes for compression, output bytes for decompression). `Sz3` is not
    /// valid here — its stages are costed individually below.
    pub fn soc_lossless(&self, algo: Algorithm, dir: Direction, bytes: usize) -> SimDuration {
        let rate = match (algo, dir) {
            (Algorithm::Deflate, Direction::Compress) => self.soc.deflate_compress,
            (Algorithm::Deflate, Direction::Decompress) => self.soc.deflate_decompress,
            (Algorithm::Lz4, Direction::Compress) => self.soc.lz4_compress,
            (Algorithm::Lz4, Direction::Decompress) => self.soc.lz4_decompress,
            (Algorithm::Zlib, Direction::Compress) => self.soc.deflate_compress,
            (Algorithm::Zlib, Direction::Decompress) => self.soc.deflate_decompress,
            (Algorithm::Pco, Direction::Compress) => self.soc.pco_compress,
            (Algorithm::Pco, Direction::Decompress) => self.soc.pco_decompress,
            (Algorithm::Sz3, _) => panic!("SZ3 is costed via sz3_core + backend stages"),
        };
        let mut t = time_for(bytes, rate * self.soc_factor);
        if algo == Algorithm::Zlib {
            t += self.checksum(bytes);
        }
        t
    }

    /// Adler-32 / zlib header+trailer work on the SoC.
    pub fn checksum(&self, bytes: usize) -> SimDuration {
        time_for(bytes, self.soc.checksum * self.soc_factor)
    }

    /// Fixed per-job C-Engine submission/completion overhead (Table III) —
    /// the part of [`CostModel::cengine_lossless`] independent of payload
    /// size. Batched submissions pay it once for the whole batch.
    pub fn cengine_job_overhead(&self, dir: Direction) -> SimDuration {
        match dir {
            Direction::Compress => self.cengine.compress_overhead,
            Direction::Decompress => self.cengine.decompress_overhead,
        }
    }

    /// C-Engine lossless operation, or `None` when this generation's engine
    /// cannot perform it (the caller is expected to fall back to the SoC).
    pub fn cengine_lossless(
        &self,
        algo: Algorithm,
        dir: Direction,
        bytes: usize,
    ) -> Option<SimDuration> {
        if !self.platform.spec().cengine.supports(algo, dir) {
            return None;
        }
        let (rate, overhead) = match (algo, dir) {
            (Algorithm::Lz4, Direction::Decompress) => {
                (self.cengine.lz4_decompress_mbps, self.cengine.decompress_overhead)
            }
            (_, Direction::Compress) => {
                (self.cengine.compress_mbps, self.cengine.compress_overhead)
            }
            (_, Direction::Decompress) => {
                (self.cengine.decompress_mbps, self.cengine.decompress_overhead)
            }
        };
        if rate <= 0.0 {
            return None;
        }
        let mut t = overhead + time_for(bytes, rate);
        if algo == Algorithm::Zlib {
            // Header/trailer stay on the SoC in the split design.
            t += self.checksum(bytes);
        }
        Some(t)
    }

    /// SZ3 core stages (predict + quantize + entropy code) on the SoC.
    pub fn sz3_core(&self, dir: Direction, bytes: usize) -> SimDuration {
        let rate = match dir {
            Direction::Compress => self.soc.sz3_core_compress,
            Direction::Decompress => self.soc.sz3_core_decompress,
        };
        time_for(bytes, rate * self.soc_factor)
    }

    /// [`CostModel::sz3_core`] broken down per stage for profiling. The
    /// split follows SZ3's published stage profile on Arm cores (predict
    /// ≈ 40%, quantize ≈ 25%, Huffman ≈ 35% of core compression time;
    /// decode inverts toward Huffman). The Huffman share is computed by
    /// subtraction so the three stages always sum *exactly* to
    /// [`CostModel::sz3_core`] — trace totals match the lump cost the
    /// scheduler charged, bit for bit.
    pub fn sz3_core_stages(&self, dir: Direction, bytes: usize) -> Sz3CoreStages {
        let total = self.sz3_core(dir, bytes);
        let (f_predict, f_quantize) = match dir {
            Direction::Compress => (0.40, 0.25),
            Direction::Decompress => (0.30, 0.20),
        };
        let predict = SimDuration((total.0 as f64 * f_predict) as u64);
        let quantize = SimDuration((total.0 as f64 * f_quantize) as u64);
        let huffman = total.saturating_sub(predict).saturating_sub(quantize);
        Sz3CoreStages { predict, quantize, huffman }
    }

    /// SZ3's native fast lossless backend on the SoC.
    pub fn sz3_zs_backend(&self, dir: Direction, bytes: usize) -> SimDuration {
        let rate = match dir {
            Direction::Compress => self.soc.zs_compress,
            Direction::Decompress => self.soc.zs_decompress,
        };
        time_for(bytes, rate * self.soc_factor)
    }

    /// Plain memory copy on the SoC.
    pub fn memcpy(&self, bytes: usize) -> SimDuration {
        time_for(bytes, self.soc.memcpy * self.soc_factor)
    }

    /// One DMA transfer of `bytes` across the host-DPU PCIe link.
    pub fn pcie_transfer(&self, bytes: usize) -> SimDuration {
        self.pcie.latency + time_for(bytes, self.pcie.bandwidth_mbps)
    }

    /// One network hop carrying `bytes`.
    pub fn network_transfer(&self, bytes: usize) -> SimDuration {
        self.network.latency + time_for(bytes, self.network.bandwidth_mbps)
    }

    /// Best available placement for an operation: prefer the engine when it
    /// supports the op (the paper's policy: "PEDAL predominantly relies on
    /// the C-Engine of BlueField (when applicable) over the SoC").
    pub fn preferred_placement(&self, algo: Algorithm, dir: Direction) -> Placement {
        if self.platform.spec().cengine.supports(algo, dir) {
            Placement::CEngine
        } else {
            Placement::Soc
        }
    }
}

/// Per-stage breakdown of the SZ3 core lump (see
/// [`CostModel::sz3_core_stages`]); stages sum exactly to the lump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sz3CoreStages {
    pub predict: SimDuration,
    pub quantize: SimDuration,
    pub huffman: SimDuration,
}

impl Sz3CoreStages {
    pub fn total(&self) -> SimDuration {
        self.predict + self.quantize + self.huffman
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB_5_1: usize = 5_100_000;
    const MIB_48_84: usize = 48_840_000;

    fn bf2() -> CostModel {
        CostModel::for_platform(Platform::BlueField2)
    }
    fn bf3() -> CostModel {
        CostModel::for_platform(Platform::BlueField3)
    }

    #[test]
    fn fig8_bf2_deflate_compress_speedup_near_101x() {
        let m = bf2();
        let soc = m.soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1);
        let ce = m.cengine_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1).unwrap();
        let speedup = soc.as_millis_f64() / ce.as_millis_f64();
        assert!((90.0..=115.0).contains(&speedup), "speedup {speedup:.1} (paper: 101.8x)");
    }

    #[test]
    fn fig8_bf2_deflate_decompress_speedup_near_11x() {
        let m = bf2();
        let soc = m.soc_lossless(Algorithm::Deflate, Direction::Decompress, MIB_5_1);
        let ce = m.cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_5_1).unwrap();
        let speedup = soc.as_millis_f64() / ce.as_millis_f64();
        assert!((8.0..=13.0).contains(&speedup), "speedup {speedup:.1} (paper: 11.2x)");
    }

    #[test]
    fn fig8_bf2_zlib_mozilla_compress_speedup_near_85x() {
        let m = bf2();
        let soc = m.soc_lossless(Algorithm::Zlib, Direction::Compress, MIB_48_84);
        let ce = m.cengine_lossless(Algorithm::Zlib, Direction::Compress, MIB_48_84).unwrap();
        let speedup = soc.as_millis_f64() / ce.as_millis_f64();
        assert!((70.0..=100.0).contains(&speedup), "speedup {speedup:.1} (paper: 84.6x)");
    }

    #[test]
    fn fig8_bf3_vs_bf2_cengine_decompress_ratios() {
        let b2 = bf2();
        let b3 = bf3();
        let r_small = b2
            .cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_5_1)
            .unwrap()
            .as_millis_f64()
            / b3.cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_5_1)
                .unwrap()
                .as_millis_f64();
        let r_large = b2
            .cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_48_84)
            .unwrap()
            .as_millis_f64()
            / b3.cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_48_84)
                .unwrap()
                .as_millis_f64();
        assert!((1.6..=2.0).contains(&r_small), "small {r_small:.2} (paper: 1.78x)");
        assert!((1.15..=1.45).contains(&r_large), "large {r_large:.2} (paper: 1.28x)");
    }

    #[test]
    fn fig7_init_dominates_small_cengine_runs() {
        // DOCA init + buffer prep ≈ 94% of a 5.1 MB C-Engine run (paper).
        let m = bf2();
        let init = m.doca_init() + m.buffer_prep(MIB_5_1);
        let comp = m.cengine_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1).unwrap();
        // Approximate decompressed-side work with the original size.
        let decomp =
            m.cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_5_1).unwrap();
        let total = init + comp + decomp;
        let frac = init.as_millis_f64() / total.as_millis_f64();
        assert!((0.90..=0.99).contains(&frac), "init fraction {frac:.3} (paper: ~0.94)");
    }

    #[test]
    fn fig7_total_cengine_speedup_vs_soc_up_to_10x() {
        // On the largest dataset the engine (incl. init) wins by ~9.67x.
        let m = bf2();
        let soc_total = m.host_alloc(MIB_48_84, 1)
            + m.soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_48_84)
            + m.soc_lossless(Algorithm::Deflate, Direction::Decompress, MIB_48_84);
        let ce_total = m.doca_init()
            + m.buffer_prep(MIB_48_84)
            + m.cengine_lossless(Algorithm::Deflate, Direction::Compress, MIB_48_84).unwrap()
            + m.cengine_lossless(Algorithm::Deflate, Direction::Decompress, MIB_48_84).unwrap();
        let speedup = soc_total.as_millis_f64() / ce_total.as_millis_f64();
        assert!((7.0..=12.0).contains(&speedup), "total speedup {speedup:.2} (paper: 9.67x)");
    }

    #[test]
    fn bf3_soc_is_about_40_percent_faster() {
        let t2 = bf2().soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1);
        let t3 = bf3().soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1);
        let reduction = 1.0 - t3.as_millis_f64() / t2.as_millis_f64();
        assert!((0.35..=0.45).contains(&reduction), "reduction {reduction:.2} (paper: ~0.40)");
    }

    #[test]
    fn bf3_engine_cannot_compress() {
        let m = bf3();
        assert!(m.cengine_lossless(Algorithm::Deflate, Direction::Compress, 1_000_000).is_none());
        assert!(m.cengine_lossless(Algorithm::Zlib, Direction::Compress, 1_000_000).is_none());
        assert_eq!(m.preferred_placement(Algorithm::Deflate, Direction::Compress), Placement::Soc);
        assert_eq!(
            m.preferred_placement(Algorithm::Deflate, Direction::Decompress),
            Placement::CEngine
        );
        // LZ4 decompression exists only on BF3's engine.
        assert!(m.cengine_lossless(Algorithm::Lz4, Direction::Decompress, 1_000_000).is_some());
        assert!(bf2().cengine_lossless(Algorithm::Lz4, Direction::Decompress, 1_000_000).is_none());
    }

    #[test]
    fn pcie_is_a_real_cost_comparable_to_the_wire() {
        // The paper's SVI warning only bites if host<->DPU movement is not
        // free: on BF2 the 200 Gb/s wire actually outruns PCIe Gen4 DMA.
        for p in Platform::ALL {
            let m = CostModel::for_platform(p);
            let bytes = 10_000_000;
            let ratio = m.pcie_transfer(bytes).as_nanos() as f64
                / m.network_transfer(bytes).as_nanos() as f64;
            assert!((0.5..=2.0).contains(&ratio), "{p:?}: pcie/net {ratio:.2}");
            assert!(m.pcie_transfer(bytes) > SimDuration::from_micros(100));
        }
        // BF3's Gen5 link is ~2x BF2's Gen4.
        let r = CostModel::for_platform(Platform::BlueField2).pcie_transfer(50_000_000).as_nanos()
            as f64
            / CostModel::for_platform(Platform::BlueField3).pcie_transfer(50_000_000).as_nanos()
                as f64;
        assert!((1.8..=2.2).contains(&r), "pcie ratio {r:.2}");
    }

    #[test]
    fn network_scales_with_platform() {
        let n2 = bf2().network_transfer(10_000_000);
        let n3 = bf3().network_transfer(10_000_000);
        // BF3's 400 Gb/s link is ~2x BF2's 200 Gb/s.
        let ratio = n2.as_millis_f64() / n3.as_millis_f64();
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn zlib_costs_more_than_deflate_by_checksum() {
        let m = bf2();
        let d = m.soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1);
        let z = m.soc_lossless(Algorithm::Zlib, Direction::Compress, MIB_5_1);
        assert_eq!(z, d + m.checksum(MIB_5_1));
    }

    #[test]
    fn host_alloc_scales_with_buffer_count() {
        let m = bf2();
        assert_eq!(m.host_alloc(1_000_000, 4), m.host_alloc(1_000_000, 1) * 4);
    }

    #[test]
    fn sz3_stage_split_sums_exactly_to_core_lump() {
        let m = bf2();
        for dir in [Direction::Compress, Direction::Decompress] {
            for bytes in [1usize, 4_097, 1_000_000, MIB_48_84] {
                let stages = m.sz3_core_stages(dir, bytes);
                assert_eq!(stages.total(), m.sz3_core(dir, bytes), "{dir:?} {bytes}");
                // Every stage carries real weight at non-trivial sizes.
                if bytes >= 1_000_000 {
                    assert!(stages.predict > SimDuration::ZERO);
                    assert!(stages.quantize > SimDuration::ZERO);
                    assert!(stages.huffman > SimDuration::ZERO);
                }
            }
        }
    }

    #[test]
    fn pco_is_soc_only_and_comparable_to_deflate() {
        for p in Platform::ALL {
            let m = CostModel::for_platform(p);
            // No engine path exists: placement always lands on the SoC.
            for dir in [Direction::Compress, Direction::Decompress] {
                assert!(m.cengine_lossless(Algorithm::Pco, dir, MIB_5_1).is_none());
                assert_eq!(m.preferred_placement(Algorithm::Pco, dir), Placement::Soc);
            }
            // SoC cost stays within 2x of SoC DEFLATE either way — the
            // "comparable virtual-time cost" band the ratio gate assumes.
            let pco = m.soc_lossless(Algorithm::Pco, Direction::Compress, MIB_5_1).as_millis_f64();
            let def =
                m.soc_lossless(Algorithm::Deflate, Direction::Compress, MIB_5_1).as_millis_f64();
            let rel = pco / def;
            assert!((0.5..=2.0).contains(&rel), "{p:?}: pco/deflate compress {rel:.2}");
        }
    }

    #[test]
    fn durations_are_deterministic() {
        // Same inputs must produce bit-identical virtual times.
        let a = bf2().soc_lossless(Algorithm::Deflate, Direction::Compress, 12_345_678);
        let b = bf2().soc_lossless(Algorithm::Deflate, Direction::Compress, 12_345_678);
        assert_eq!(a, b);
    }
}
