//! # pedal-dpu
//!
//! Simulated NVIDIA BlueField DPU platform layer for the PEDAL
//! reproduction:
//!
//! * [`platform`] — BlueField-2 / BlueField-3 hardware descriptors and the
//!   C-Engine capability matrix (paper Table II),
//! * [`clock`] — deterministic virtual time ([`SimClock`], [`SimDuration`]),
//! * [`costs`] — the calibrated cost model turning operation sizes into
//!   virtual durations that reproduce the paper's reported ratios,
//! * [`bytes`] — a clone-cheap immutable byte buffer shared by the MPI and
//!   serving layers,
//! * [`rng`] — a seeded PCG32 generator backing dataset synthesis and
//!   in-tree test-case generation.
//!
//! Real compression work happens in the codec crates; this crate only
//! answers "how long would that have taken on the DPU".

pub mod bytes;
pub mod clock;
pub mod costs;
pub mod platform;
pub mod rng;

pub use bytes::Bytes;
pub use clock::{SimClock, SimDuration, SimInstant};
pub use costs::{CostModel, Sz3CoreStages};
pub use platform::{Algorithm, CEngineSpec, Direction, Placement, Platform, PlatformSpec};
pub use rng::Pcg32;
