//! End-to-end assertions of the paper's headline claims, exercised through
//! the full stack (datasets → PEDAL → DOCA sim → MPI runtime) rather than
//! the cost model alone. Each test names the paper artifact it guards.

use pedal::{Datatype, Design, OverheadMode};
use pedal_codesign::{PedalComm, PedalCommConfig};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;
use pedal_mpi::{run_world, RankCtx, WorldConfig};

/// One-way p2p virtual latency through the co-designed stack.
fn p2p_ns(platform: Platform, design: Design, mode: OverheadMode, data: &[u8]) -> u64 {
    let payload = data.to_vec();
    let datatype = if design.is_lossy() { Datatype::Float32 } else { Datatype::Byte };
    let results = run_world(WorldConfig::new(2, platform), move |mpi: &mut RankCtx| {
        let mut cfg = PedalCommConfig::new(design);
        cfg.overhead_mode = mode;
        let (mut comm, _) = PedalComm::init(mpi, cfg).unwrap();
        if mpi.rank == 0 {
            let mut out = 0u64;
            for it in 0..2u64 {
                let t0 = mpi.now();
                comm.send(mpi, 1, it, datatype, &payload).unwrap();
                let (_, done) = comm.recv(mpi, 1, 100 + it, payload.len()).unwrap();
                if it == 1 {
                    out = done.elapsed_since(t0).as_nanos() / 2;
                }
            }
            out
        } else {
            for it in 0..2u64 {
                let (msg, _) = comm.recv(mpi, 0, it, payload.len()).unwrap();
                comm.send(mpi, 0, 100 + it, datatype, &msg).unwrap();
            }
            0
        }
    });
    results[0]
}

#[test]
fn fig10_pedal_vs_baseline_up_to_dozens_x() {
    // Paper: "an acceleration of up to 88x relative to the baseline on
    // BlueField-2 for DEFLATE and zlib methodologies".
    let mut best = 0.0f64;
    for size in [1_000_000usize, 2_000_000, 4_000_000] {
        let data = DatasetId::SilesiaXml.generate_bytes(size);
        let pedal_t = p2p_ns(Platform::BlueField2, Design::CE_DEFLATE, OverheadMode::Pedal, &data);
        let base_t =
            p2p_ns(Platform::BlueField2, Design::CE_DEFLATE, OverheadMode::Baseline, &data);
        best = best.max(base_t as f64 / pedal_t as f64);
    }
    assert!(
        (40.0..=160.0).contains(&best),
        "best speedup {best:.1}x should be in the tens (paper: up to 88x)"
    );
}

#[test]
fn fig10_bf3_soc_reduces_latency_about_40_percent() {
    // Paper: SoC designs on BF3 cut communication time by up to 40% vs BF2.
    let data = DatasetId::SilesiaSamba.generate_bytes(4_000_000);
    let bf2 = p2p_ns(Platform::BlueField2, Design::SOC_DEFLATE, OverheadMode::Pedal, &data);
    let bf3 = p2p_ns(Platform::BlueField3, Design::SOC_DEFLATE, OverheadMode::Pedal, &data);
    let reduction = 1.0 - bf3 as f64 / bf2 as f64;
    assert!(
        (0.30..=0.48).contains(&reduction),
        "BF3 SoC reduction {reduction:.2} (paper: up to 0.40)"
    );
}

#[test]
fn fig10_bf3_ce_deflate_crosses_above_baseline_at_large_sizes() {
    // Paper: "BlueField-3's C-Engine exhibited elongated communication
    // times for DEFLATE and zlib methods, surpassing even the baseline"
    // — the BF3 engine can't compress, so the SoC fallback eventually
    // loses to BF2's engine-with-per-message-init baseline.
    let small = DatasetId::SilesiaMozilla.generate_bytes(1_000_000);
    let large = DatasetId::SilesiaMozilla.generate_bytes(24_000_000);
    let base_small =
        p2p_ns(Platform::BlueField2, Design::CE_DEFLATE, OverheadMode::Baseline, &small);
    let bf3_small = p2p_ns(Platform::BlueField3, Design::CE_DEFLATE, OverheadMode::Pedal, &small);
    let base_large =
        p2p_ns(Platform::BlueField2, Design::CE_DEFLATE, OverheadMode::Baseline, &large);
    let bf3_large = p2p_ns(Platform::BlueField3, Design::CE_DEFLATE, OverheadMode::Pedal, &large);
    assert!(bf3_small < base_small, "small messages: PEDAL still wins");
    assert!(
        bf3_large > base_large,
        "large messages: BF3 CE fallback ({:.1} ms) should exceed the baseline ({:.1} ms)",
        bf3_large as f64 / 1e6,
        base_large as f64 / 1e6
    );
}

#[test]
fn fig10_lossy_latency_reduction_tens_of_percent() {
    // Paper: SZ3 with PEDAL cuts latency 47.3% (BF2) / 48% (BF3) vs the
    // per-message-init baseline.
    let data = DatasetId::Exaalt1.generate_bytes(4_000_000);
    for platform in Platform::ALL {
        let soc = p2p_ns(platform, Design::SOC_SZ3, OverheadMode::Pedal, &data);
        let base = p2p_ns(platform, Design::CE_SZ3, OverheadMode::Baseline, &data);
        let reduction = 1.0 - soc as f64 / base as f64;
        assert!(
            (0.25..=0.70).contains(&reduction),
            "{platform:?}: lossy reduction {reduction:.2} (paper: ~0.47-0.48)"
        );
    }
}

#[test]
fn fig11_bcast_ce_speedup_tens_x() {
    // Paper: "utilizing the C-Engine of BlueField-2 ... a speedup of up to
    // 68x over the baseline".
    let data = DatasetId::SilesiaXml.generate_bytes(2_000_000);
    let run = |mode: OverheadMode| {
        let payload = data.clone();
        let results = run_world(WorldConfig::new(4, Platform::BlueField2), move |mpi| {
            let mut cfg = PedalCommConfig::new(Design::CE_DEFLATE);
            cfg.overhead_mode = mode;
            let (mut comm, _) = PedalComm::init(mpi, cfg).unwrap();
            let mut out = 0u64;
            for it in 0..2 {
                let root_data = if mpi.rank == 0 { Some(&payload[..]) } else { None };
                let t0 = mpi.now();
                let (_, done) =
                    comm.bcast(mpi, 0, Datatype::Byte, root_data, payload.len()).unwrap();
                if it == 1 {
                    out = done.elapsed_since(t0).as_nanos();
                }
                pedal_mpi::barrier(mpi).unwrap();
            }
            out
        });
        results.into_iter().max().unwrap()
    };
    let pedal_t = run(OverheadMode::Pedal);
    let base_t = run(OverheadMode::Baseline);
    let speedup = base_t as f64 / pedal_t as f64;
    assert!((25.0..=160.0).contains(&speedup), "bcast speedup {speedup:.1}x (paper: up to 68x)");
}

#[test]
fn table_v_ratio_shape_holds_end_to_end() {
    // Ratio ordering through the PEDAL API itself (not the raw codecs).
    let ratio = |id: DatasetId| {
        let data = id.generate_bytes(600_000);
        let ctx = pedal::PedalContext::init(pedal::PedalConfig::new(
            Platform::BlueField2,
            Design::CE_DEFLATE,
        ))
        .unwrap();
        ctx.compress(Datatype::Byte, &data).unwrap().ratio()
    };
    let xml = ratio(DatasetId::SilesiaXml);
    let samba = ratio(DatasetId::SilesiaSamba);
    let obs = ratio(DatasetId::ObsError);
    assert!(xml > samba && samba > obs, "xml {xml:.2} > samba {samba:.2} > obs {obs:.2}");
}

#[test]
fn zlib_and_deflate_wire_ratios_match_table_v() {
    // Table V reports identical DEFLATE and zlib ratios.
    let data = DatasetId::SilesiaMr.generate_bytes(400_000);
    let r = |design| {
        let ctx = pedal::PedalContext::init(pedal::PedalConfig::new(Platform::BlueField2, design))
            .unwrap();
        ctx.compress(Datatype::Byte, &data).unwrap().wire_len()
    };
    let d = r(Design::CE_DEFLATE);
    let z = r(Design::CE_ZLIB);
    assert!((z as i64 - d as i64).unsigned_abs() <= 6, "zlib adds only its 6-byte envelope");
}
