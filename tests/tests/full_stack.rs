//! Cross-crate integration: datasets through codecs, PEDAL, DOCA sim, and
//! the MPI runtime, including failure paths and cross-platform messaging.

use pedal::{Datatype, Design, PedalConfig, PedalContext};
use pedal_datasets::DatasetId;
use pedal_dpu::{Platform, SimDuration};
use pedal_mpi::{run_world, WorldConfig};

#[test]
fn every_dataset_roundtrips_through_every_compatible_design() {
    for id in DatasetId::ALL {
        let data = id.generate_bytes(300_000);
        for design in Design::ALL {
            if design.is_lossy() != id.is_lossy_dataset() {
                continue;
            }
            let datatype = if design.is_lossy() { Datatype::Float32 } else { Datatype::Byte };
            for platform in Platform::ALL {
                let ctx = PedalContext::init(PedalConfig::new(platform, design)).unwrap();
                let packed = ctx.compress(datatype, &data).unwrap();
                let out = ctx.decompress(&packed.payload, data.len()).unwrap();
                if design.is_lossy() {
                    for (a, b) in data.chunks_exact(4).zip(out.data.chunks_exact(4)) {
                        let x = f32::from_le_bytes(a.try_into().unwrap());
                        let y = f32::from_le_bytes(b.try_into().unwrap());
                        assert!(
                            ((x - y).abs() as f64) <= 1e-4,
                            "{} via {design} on {platform:?}",
                            id.name()
                        );
                    }
                } else {
                    assert_eq!(out.data, data, "{} via {design} on {platform:?}", id.name());
                }
            }
        }
    }
}

#[test]
fn bf2_sender_bf3_receiver_and_back() {
    // Heterogeneous cluster: BF2 compresses on its engine; BF3 decompresses
    // on its engine. The wire format is platform-independent.
    let data = DatasetId::SilesiaXml.generate_bytes(500_000);
    let bf2 =
        PedalContext::init(PedalConfig::new(Platform::BlueField2, Design::CE_DEFLATE)).unwrap();
    let bf3 =
        PedalContext::init(PedalConfig::new(Platform::BlueField3, Design::CE_DEFLATE)).unwrap();

    let packed = bf2.compress(Datatype::Byte, &data).unwrap();
    assert!(!packed.fell_back, "BF2 engine compresses DEFLATE");
    let out = bf3.decompress(&packed.payload, data.len()).unwrap();
    assert!(!out.fell_back, "BF3 engine decompresses DEFLATE");
    assert_eq!(out.data, data);

    // Reverse direction: BF3 must fall back to its SoC for compression.
    let packed = bf3.compress(Datatype::Byte, &data).unwrap();
    assert!(packed.fell_back);
    let out = bf2.decompress(&packed.payload, data.len()).unwrap();
    assert_eq!(out.data, data);
}

#[test]
fn eight_rank_ring_with_mixed_payloads() {
    let results = run_world(WorldConfig::new(8, Platform::BlueField3), |mpi| {
        use pedal_mpi::Bytes;
        // Each rank passes a rank-specific payload around the ring.
        let mine: Vec<u8> = DatasetId::SilesiaSamba.generate_bytes(64 * 1024 + mpi.rank * 1000);
        let next = (mpi.rank + 1) % mpi.size;
        let prev = (mpi.rank + mpi.size - 1) % mpi.size;
        mpi.send(next, 9, Bytes::from(mine.clone())).unwrap();
        let (got, _) = mpi.recv(prev, 9).unwrap();
        (mine.len(), got.len())
    });
    for (rank, (sent, got)) in results.iter().enumerate() {
        let prev = (rank + 8 - 1) % 8;
        assert_eq!(*got, 64 * 1024 + prev * 1000, "rank {rank} got wrong size");
        assert_eq!(*sent, 64 * 1024 + rank * 1000);
    }
}

#[test]
fn engine_contention_serializes_virtual_time() {
    // Two compression jobs submitted to one DPU's engine at the same
    // instant must not overlap in virtual time.
    use pedal_doca::{CompressJob, DocaContext, JobKind};
    use pedal_dpu::SimInstant;
    let ctx = DocaContext::open(Platform::BlueField2).unwrap();
    let data = DatasetId::SilesiaMozilla.generate_bytes(4_000_000);
    let (r1, t1) = ctx
        .submit(CompressJob::new(JobKind::DeflateCompress, data.clone()), SimInstant::EPOCH)
        .unwrap();
    let (r2, t2) =
        ctx.submit(CompressJob::new(JobKind::DeflateCompress, data), SimInstant::EPOCH).unwrap();
    assert_eq!(t2.0, r1.service_time.as_nanos() + r2.service_time.as_nanos());
    assert!(t2 > t1);
}

#[test]
fn sz3_streams_survive_the_wire_and_identify_themselves() {
    // The sealed SZ3 stream inside a PEDAL message is self-describing:
    // decompression works with only the payload + expected length.
    let data = DatasetId::Exaalt3.generate_bytes(200_000);
    let sender =
        PedalContext::init(PedalConfig::new(Platform::BlueField2, Design::CE_SZ3)).unwrap();
    let receiver =
        PedalContext::init(PedalConfig::new(Platform::BlueField3, Design::SOC_DEFLATE)).unwrap();
    let packed = sender.compress(Datatype::Float32, &data).unwrap();
    let out = receiver.decompress(&packed.payload, data.len()).unwrap();
    assert_eq!(out.data.len(), data.len());
}

#[test]
fn corrupted_wire_payloads_never_panic() {
    let data = DatasetId::SilesiaXml.generate_bytes(100_000);
    let ctx = PedalContext::init(PedalConfig::new(Platform::BlueField2, Design::CE_ZLIB)).unwrap();
    let packed = ctx.compress(Datatype::Byte, &data).unwrap().payload;
    // Flip every 97th byte, one at a time, including the header.
    for i in (0..packed.len()).step_by(97) {
        let mut bad = packed.clone();
        bad[i] ^= 0x5A;
        let _ = ctx.decompress(&bad, data.len()); // must return, not panic
    }
    // Truncations.
    for cut in [0, 1, 2, 3, 7, packed.len() / 2, packed.len() - 1] {
        let _ = ctx.decompress(&packed[..cut], data.len());
    }
}

#[test]
fn init_report_scales_with_pool_configuration() {
    let small = PedalContext::init(PedalConfig {
        pool_buffers: 1,
        pool_capacity: 1 << 20,
        ..PedalConfig::new(Platform::BlueField2, Design::CE_DEFLATE)
    })
    .unwrap();
    let large = PedalContext::init(PedalConfig {
        pool_buffers: 8,
        pool_capacity: 16 << 20,
        ..PedalConfig::new(Platform::BlueField2, Design::CE_DEFLATE)
    })
    .unwrap();
    assert!(large.init_report().pool_prealloc > small.init_report().pool_prealloc);
    assert_eq!(large.init_report().doca_init, small.init_report().doca_init);
    assert!(small.init_report().doca_init >= SimDuration::from_millis(50));
}
