//! Integration coverage of the post-reproduction extensions (DESIGN.md §6):
//! parallel/hybrid compression, deployment modes, REL bounds, predictor
//! auto-selection, gzip, and the extra collectives — exercised together.

use pedal::{Datatype, Design, ParallelStrategy};
use pedal_codesign::{Deployment, PedalComm, PedalCommConfig};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;
use pedal_mpi::{run_world, WorldConfig};

#[test]
fn hybrid_compression_feeds_cross_platform_consumers() {
    // Compress with the BF2 hybrid planner, decompress SoC-parallel on BF3.
    let data = DatasetId::SilesiaSamba.generate_bytes(3_000_000);
    let bf2 = pedal_doca::DocaContext::open(Platform::BlueField2).unwrap();
    let bf3 = pedal_doca::DocaContext::open(Platform::BlueField3).unwrap();
    let packed =
        pedal::compress_chunked(&bf2, &data, 512 * 1024, ParallelStrategy::Hybrid { soc_cores: 8 })
            .unwrap();
    let out = pedal::decompress_chunked(
        &bf3,
        &packed.bytes,
        data.len(),
        ParallelStrategy::SocParallel { cores: 16 },
    )
    .unwrap();
    assert_eq!(out.bytes, data);
    assert!(packed.makespan < out.makespan * 64, "sanity: both finite");
}

#[test]
fn host_offload_pipelining_recovers_most_of_the_penalty() {
    let data = DatasetId::SilesiaXml.generate_bytes(4_000_000);
    let latency = |deployment: Deployment| {
        let payload = data.clone();
        let results = run_world(WorldConfig::new(2, Platform::BlueField2), move |mpi| {
            let cfg = PedalCommConfig::new(Design::CE_DEFLATE).with_deployment(deployment);
            let (mut comm, _) = PedalComm::init(mpi, cfg).unwrap();
            if mpi.rank == 0 {
                let mut out = 0u64;
                for it in 0..2u64 {
                    let t0 = mpi.now();
                    comm.send(mpi, 1, it, Datatype::Byte, &payload).unwrap();
                    let (_, done) = comm.recv(mpi, 1, 100 + it, payload.len()).unwrap();
                    if it == 1 {
                        out = done.elapsed_since(t0).as_nanos();
                    }
                }
                out
            } else {
                for it in 0..2u64 {
                    let (msg, _) = comm.recv(mpi, 0, it, payload.len()).unwrap();
                    comm.send(mpi, 0, 100 + it, Datatype::Byte, &msg).unwrap();
                }
                0
            }
        });
        results[0]
    };
    let on_dpu = latency(Deployment::OnDpu);
    let serial = latency(Deployment::HostOffload { pipelined: false });
    let piped = latency(Deployment::HostOffload { pipelined: true });
    assert!(serial > on_dpu, "offload must cost something");
    assert!(piped >= on_dpu, "pipelining can't beat on-DPU");
    assert!(piped < serial, "pipelining must help");
    // Pipelining recovers at least half the penalty.
    assert!((serial - piped) * 2 >= serial - on_dpu);
}

#[test]
fn rel_bound_travels_through_the_mpi_path() {
    // REL-mode SZ3 via the raw sz3 crate, shipped as opaque bytes over MPI
    // and decoded at the receiver, with the range-scaled bound verified.
    let field = pedal_sz3::Field::<f32>::from_bytes(
        pedal_sz3::Dims::d1(100_000),
        &DatasetId::Exaalt3.generate_bytes(400_000),
    );
    let cfg = pedal_sz3::Sz3Config::with_relative_bound(1e-4);
    let packed = pedal_sz3::compress(&field, &cfg);
    let results = run_world(WorldConfig::new(2, Platform::BlueField2), move |mpi| {
        use pedal_mpi::Bytes;
        if mpi.rank == 0 {
            mpi.send(1, 1, Bytes::from(packed.clone())).unwrap();
            Vec::new()
        } else {
            let (msg, _) = mpi.recv(0, 1).unwrap();
            pedal_sz3::decompress::<f32>(&msg).unwrap().data
        }
    });
    let (lo, hi) = field.range();
    let bound = 1e-4 * (hi - lo);
    for (a, b) in field.data.iter().zip(&results[1]) {
        assert!(((a - b).abs() as f64) <= bound * 1.0001);
    }
}

#[test]
fn auto_predictor_composes_with_backends() {
    let field = pedal_sz3::Field::<f32>::from_bytes(
        pedal_sz3::Dims::d1(50_000),
        &DatasetId::Exaalt1.generate_bytes(200_000),
    );
    for backend in [pedal_sz3::BackendKind::Zs, pedal_sz3::BackendKind::Deflate] {
        let cfg = pedal_sz3::Sz3Config { backend, ..pedal_sz3::Sz3Config::with_error_bound(1e-4) };
        let (stream, picked) = pedal_sz3::compress_auto(&field, &cfg);
        let recon = pedal_sz3::decompress::<f32>(&stream).unwrap();
        assert!(field.max_abs_diff(&recon) <= 1e-4, "{picked:?}/{backend:?}");
    }
}

#[test]
fn gzip_carries_dataset_content() {
    // The gzip envelope over a realistic dataset, including the CRC path.
    let data = DatasetId::SilesiaMozilla.generate_bytes(800_000);
    let z = pedal_zlib::gzip_compress(&data, pedal_zlib::Level::DEFAULT);
    assert!(z.len() < data.len() / 2, "mozilla-like data compresses ~2.7x");
    assert_eq!(pedal_zlib::gzip_decompress(&z).unwrap(), data);
}

#[test]
fn alltoall_of_compressed_blobs() {
    // Each rank pre-compresses a distinct dataset slice, exchanges blobs
    // all-to-all, and decodes what it received.
    let results = run_world(WorldConfig::new(4, Platform::BlueField3), |mpi| {
        use pedal_mpi::Bytes;
        let parts: Vec<Bytes> = (0..mpi.size)
            .map(|j| {
                let raw = DatasetId::SilesiaXml.generate_bytes(40_000 + (mpi.rank * 4 + j) * 1000);
                Bytes::from(pedal_deflate::compress(&raw, pedal_deflate::Level::FAST))
            })
            .collect();
        let got = pedal_mpi::alltoall(mpi, parts).unwrap();
        got.iter().map(|b| pedal_deflate::decompress(b).unwrap().len()).collect::<Vec<_>>()
    });
    for (me, lens) in results.iter().enumerate() {
        for (from, &len) in lens.iter().enumerate() {
            assert_eq!(len, 40_000 + (from * 4 + me) * 1000, "{from}->{me}");
        }
    }
}
