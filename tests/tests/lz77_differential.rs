//! Differential tests for the LZ77 tokenizer: lazy and greedy matching
//! are different *speed/ratio* trade-offs, never different *data*. Over
//! the pedal-testkit corpora both must detokenize byte-identically, and
//! lazy evaluation at a level's chain budget must never produce a more
//! expensive token stream than greedy at the same `max_chain` — costed
//! exactly, in RFC 1951 fixed-Huffman bits.

use pedal_deflate::consts::{dist_code, length_code, DIST_EXTRA, LENGTH_EXTRA};
use pedal_deflate::lz77::{detokenize, tokenize, MatcherParams, Token};
use pedal_testkit::{build_corpus, CodecId};

/// Exact encoded size of a token stream under the fixed Huffman tables
/// (RFC 1951 §3.2.6): literals 0..=143 cost 8 bits, 144..=255 cost 9;
/// length symbols 257..=279 cost 7, 280..=287 cost 8, plus length extra
/// bits; every distance code costs 5 bits plus distance extra bits.
fn fixed_huffman_bits(tokens: &[Token]) -> u64 {
    let mut bits = 0u64;
    for t in tokens {
        bits += match *t {
            Token::Literal(b) => {
                if b < 144 {
                    8
                } else {
                    9
                }
            }
            Token::Match { len, dist } => {
                let lc = length_code(len as usize);
                let lsym = 257 + lc;
                let lbits: u64 = if lsym <= 279 { 7 } else { 8 };
                lbits + LENGTH_EXTRA[lc] as u64 + 5 + DIST_EXTRA[dist_code(dist as usize)] as u64
            }
        };
    }
    bits
}

fn collect(data: &[u8], params: MatcherParams) -> Vec<Token> {
    let mut tokens = Vec::new();
    tokenize(data, params, |t| tokens.push(t));
    tokens
}

/// Corpus inputs: the original bytes behind every deflate fuzz base.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    build_corpus(CodecId::Deflate, 24 * 1024).into_iter().map(|c| (c.dataset, c.original)).collect()
}

#[test]
fn lazy_and_greedy_detokenize_identically() {
    for (name, data) in corpus() {
        for level in 1..=9u8 {
            let lazy = MatcherParams { lazy: true, ..MatcherParams::for_level(level) };
            let greedy = MatcherParams { lazy: false, ..lazy };
            let lt = collect(&data, lazy);
            let gt = collect(&data, greedy);
            assert_eq!(detokenize(&lt), data, "{name} level {level}: lazy corrupts data");
            assert_eq!(detokenize(&gt), data, "{name} level {level}: greedy corrupts data");
        }
    }
}

#[test]
fn lazy_never_costs_more_than_greedy_at_same_chain() {
    for (name, data) in corpus() {
        // Levels 4..=9 are the lazy half of the ladder; compare each
        // against greedy matching with the identical chain budget.
        for level in 4..=9u8 {
            let lazy = MatcherParams::for_level(level);
            assert!(lazy.lazy, "levels 4..=9 are lazy");
            let greedy = MatcherParams { lazy: false, ..lazy };
            let lazy_bits = fixed_huffman_bits(&collect(&data, lazy));
            let greedy_bits = fixed_huffman_bits(&collect(&data, greedy));
            assert!(
                lazy_bits <= greedy_bits,
                "{name} level {level}: lazy {lazy_bits} bits > greedy {greedy_bits} bits"
            );
        }
    }
}

/// Level 0 sits outside the ladder: no matching at all, so its token
/// stream is pure literals regardless of content.
#[test]
fn level_zero_emits_literals_only_everywhere() {
    for (name, data) in corpus() {
        let tokens = collect(&data, MatcherParams::for_level(0));
        assert_eq!(tokens.len(), data.len(), "{name}: level 0 must not match");
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))), "{name}");
        assert_eq!(detokenize(&tokens), data, "{name}");
    }
}
