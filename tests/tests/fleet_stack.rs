//! Whole-stack smoke for the fleet tier: open-loop trace (pedal-datasets)
//! → capability-aware multi-node routing (pedal-fleet over pedal-service)
//! → wire-level byte identity (pedal) and a replay-stable digest — the
//! cross-crate contract the per-crate suites each check only half of.

use pedal::{wire, Datatype, Design};
use pedal_datasets::workload::{generate_arrivals, OpenLoopConfig};
use pedal_dpu::SimDuration;
use pedal_fleet::{run_fleet, FleetConfig, NodeSpec, PlacementAction};

#[test]
fn open_loop_trace_through_mixed_fleet_round_trips() {
    let trace = generate_arrivals(
        &OpenLoopConfig::poisson(7, SimDuration::from_micros(150), SimDuration::from_millis(6))
            .with_payload(2 << 10, 8 << 10),
    );
    assert!(!trace.is_empty());
    let cfg = FleetConfig::new(vec![NodeSpec::bf2(), NodeSpec::bf3()]);
    let run = run_fleet(&cfg, &trace, |_| Design::CE_DEFLATE);

    // Same trace, same config ⇒ same digest (the replay witness the
    // fleet crate's own suite checks at more seeds).
    let replay = run_fleet(&cfg, &trace, |_| Design::CE_DEFLATE);
    assert_eq!(run.digest(), replay.digest());

    // Every completion decodes back to its arrival's payload through
    // the top-level wire API — fleet routing must never change bytes.
    let mut design_of = std::collections::BTreeMap::new();
    for r in &run.log.records {
        if let PlacementAction::Submitted { design, .. } = r.action {
            design_of.insert(r.seq, design);
        }
    }
    let mut checked = 0;
    for c in &run.completions {
        let Some(&seq) = run.job_seq.get(&(c.node, c.job.id)) else { continue };
        let out = c.job.result.as_ref().expect("fleet job failed");
        let data = trace[seq as usize].payload();
        let (decoded, _) = wire::decompress_payload(&out.bytes, data.len()).unwrap();
        assert_eq!(decoded, data, "seq {seq} did not round-trip");
        let (oracle, _) =
            wire::compress_payload(design_of[&seq], Datatype::Byte, cfg.error_bound, &data)
                .unwrap();
        assert_eq!(out.bytes, oracle, "seq {seq} diverged from the synchronous path");
        checked += 1;
    }
    assert!(checked > 10, "only {checked} completions checked — trace too light");
}
