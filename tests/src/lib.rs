//! Integration-test-only package; see `tests/` for the cross-crate suites.
