/root/repo/target/release/deps/ablation_host_offload-cecc6e2258760c3a.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/release/deps/ablation_host_offload-cecc6e2258760c3a: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
