/root/repo/target/release/deps/bench-553990c9fec118c3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-553990c9fec118c3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-553990c9fec118c3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
