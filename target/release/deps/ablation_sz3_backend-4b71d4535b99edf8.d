/root/repo/target/release/deps/ablation_sz3_backend-4b71d4535b99edf8.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/release/deps/ablation_sz3_backend-4b71d4535b99edf8: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
