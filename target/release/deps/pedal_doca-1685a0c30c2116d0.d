/root/repo/target/release/deps/pedal_doca-1685a0c30c2116d0.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/release/deps/libpedal_doca-1685a0c30c2116d0.rlib: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/release/deps/libpedal_doca-1685a0c30c2116d0.rmeta: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
