/root/repo/target/release/deps/pedal_mpi-1baff650b44169a8.d: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

/root/repo/target/release/deps/libpedal_mpi-1baff650b44169a8.rlib: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

/root/repo/target/release/deps/libpedal_mpi-1baff650b44169a8.rmeta: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

crates/pedal-mpi/src/lib.rs:
crates/pedal-mpi/src/collectives.rs:
crates/pedal-mpi/src/comm.rs:
