/root/repo/target/release/deps/fuzz_sweep-3173ea71935e8108.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/release/deps/fuzz_sweep-3173ea71935e8108: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
