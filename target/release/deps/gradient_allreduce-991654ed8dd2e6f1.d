/root/repo/target/release/deps/gradient_allreduce-991654ed8dd2e6f1.d: examples/gradient_allreduce.rs

/root/repo/target/release/deps/gradient_allreduce-991654ed8dd2e6f1: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
