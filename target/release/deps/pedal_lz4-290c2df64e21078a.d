/root/repo/target/release/deps/pedal_lz4-290c2df64e21078a.d: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

/root/repo/target/release/deps/libpedal_lz4-290c2df64e21078a.rlib: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

/root/repo/target/release/deps/libpedal_lz4-290c2df64e21078a.rmeta: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

crates/pedal-lz4/src/lib.rs:
crates/pedal-lz4/src/block.rs:
crates/pedal-lz4/src/frame.rs:
