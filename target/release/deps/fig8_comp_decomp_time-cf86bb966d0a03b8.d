/root/repo/target/release/deps/fig8_comp_decomp_time-cf86bb966d0a03b8.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/release/deps/fig8_comp_decomp_time-cf86bb966d0a03b8: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
