/root/repo/target/release/deps/fig8_comp_decomp_time-836731e979bb9552.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/release/deps/fig8_comp_decomp_time-836731e979bb9552: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
