/root/repo/target/release/deps/fuzz_sweep-2cc94ee3021457de.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/release/deps/fuzz_sweep-2cc94ee3021457de: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
