/root/repo/target/release/deps/fig7_lossless_breakdown-bbdc52cdad6a490a.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/release/deps/fig7_lossless_breakdown-bbdc52cdad6a490a: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
