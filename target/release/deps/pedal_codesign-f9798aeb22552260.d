/root/repo/target/release/deps/pedal_codesign-f9798aeb22552260.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/release/deps/libpedal_codesign-f9798aeb22552260.rlib: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/release/deps/libpedal_codesign-f9798aeb22552260.rmeta: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
