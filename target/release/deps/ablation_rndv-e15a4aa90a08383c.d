/root/repo/target/release/deps/ablation_rndv-e15a4aa90a08383c.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/release/deps/ablation_rndv-e15a4aa90a08383c: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
