/root/repo/target/release/deps/osu_bw-d5f931373b06a3a3.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/release/deps/osu_bw-d5f931373b06a3a3: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
