/root/repo/target/release/deps/obs_smoke-929fe4845e804d20.d: crates/bench/src/bin/obs_smoke.rs

/root/repo/target/release/deps/obs_smoke-929fe4845e804d20: crates/bench/src/bin/obs_smoke.rs

crates/bench/src/bin/obs_smoke.rs:
