/root/repo/target/release/deps/ablation_rndv-d3c589ebdce8cf6a.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/release/deps/ablation_rndv-d3c589ebdce8cf6a: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
