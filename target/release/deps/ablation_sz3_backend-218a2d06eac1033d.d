/root/repo/target/release/deps/ablation_sz3_backend-218a2d06eac1033d.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/release/deps/ablation_sz3_backend-218a2d06eac1033d: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
