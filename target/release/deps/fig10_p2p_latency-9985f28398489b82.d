/root/repo/target/release/deps/fig10_p2p_latency-9985f28398489b82.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/release/deps/fig10_p2p_latency-9985f28398489b82: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
