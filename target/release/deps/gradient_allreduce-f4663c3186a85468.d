/root/repo/target/release/deps/gradient_allreduce-f4663c3186a85468.d: examples/gradient_allreduce.rs

/root/repo/target/release/deps/gradient_allreduce-f4663c3186a85468: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
