/root/repo/target/release/deps/pedal_integration_tests-5aff3410737d456c.d: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-5aff3410737d456c.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-5aff3410737d456c.rmeta: tests/src/lib.rs

tests/src/lib.rs:
