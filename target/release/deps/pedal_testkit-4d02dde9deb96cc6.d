/root/repo/target/release/deps/pedal_testkit-4d02dde9deb96cc6.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-4d02dde9deb96cc6.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-4d02dde9deb96cc6.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
