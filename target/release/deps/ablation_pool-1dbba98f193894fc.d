/root/repo/target/release/deps/ablation_pool-1dbba98f193894fc.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-1dbba98f193894fc: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
