/root/repo/target/release/deps/quickstart-2d036a55822a5129.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-2d036a55822a5129: examples/quickstart.rs

examples/quickstart.rs:
