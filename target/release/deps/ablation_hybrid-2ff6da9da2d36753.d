/root/repo/target/release/deps/ablation_hybrid-2ff6da9da2d36753.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-2ff6da9da2d36753: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
