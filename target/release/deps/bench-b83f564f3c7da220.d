/root/repo/target/release/deps/bench-b83f564f3c7da220.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-b83f564f3c7da220.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-b83f564f3c7da220.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
