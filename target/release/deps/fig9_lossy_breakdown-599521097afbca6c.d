/root/repo/target/release/deps/fig9_lossy_breakdown-599521097afbca6c.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/release/deps/fig9_lossy_breakdown-599521097afbca6c: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
