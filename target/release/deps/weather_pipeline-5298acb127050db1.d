/root/repo/target/release/deps/weather_pipeline-5298acb127050db1.d: examples/weather_pipeline.rs

/root/repo/target/release/deps/weather_pipeline-5298acb127050db1: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
