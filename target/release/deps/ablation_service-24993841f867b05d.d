/root/repo/target/release/deps/ablation_service-24993841f867b05d.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-24993841f867b05d: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
