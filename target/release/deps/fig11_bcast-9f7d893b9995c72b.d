/root/repo/target/release/deps/fig11_bcast-9f7d893b9995c72b.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/release/deps/fig11_bcast-9f7d893b9995c72b: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
