/root/repo/target/release/deps/weather_pipeline-2855194cc6863278.d: examples/weather_pipeline.rs

/root/repo/target/release/deps/weather_pipeline-2855194cc6863278: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
