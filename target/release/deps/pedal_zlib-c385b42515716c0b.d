/root/repo/target/release/deps/pedal_zlib-c385b42515716c0b.d: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

/root/repo/target/release/deps/libpedal_zlib-c385b42515716c0b.rlib: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

/root/repo/target/release/deps/libpedal_zlib-c385b42515716c0b.rmeta: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

crates/pedal-zlib/src/lib.rs:
crates/pedal-zlib/src/adler.rs:
crates/pedal-zlib/src/crc32.rs:
crates/pedal-zlib/src/gzip.rs:
