/root/repo/target/release/deps/pedal_service-d9d50e35967e601b.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/release/deps/libpedal_service-d9d50e35967e601b.rlib: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/release/deps/libpedal_service-d9d50e35967e601b.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
