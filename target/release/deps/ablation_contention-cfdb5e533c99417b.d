/root/repo/target/release/deps/ablation_contention-cfdb5e533c99417b.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/release/deps/ablation_contention-cfdb5e533c99417b: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
