/root/repo/target/release/deps/halo_exchange-04bf43774aca1972.d: examples/halo_exchange.rs

/root/repo/target/release/deps/halo_exchange-04bf43774aca1972: examples/halo_exchange.rs

examples/halo_exchange.rs:
