/root/repo/target/release/deps/fig8_comp_decomp_time-da25af1590520b19.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/release/deps/fig8_comp_decomp_time-da25af1590520b19: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
