/root/repo/target/release/deps/osu_bw-4c70c7dba8e61f9b.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/release/deps/osu_bw-4c70c7dba8e61f9b: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
