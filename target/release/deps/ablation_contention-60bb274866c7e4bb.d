/root/repo/target/release/deps/ablation_contention-60bb274866c7e4bb.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/release/deps/ablation_contention-60bb274866c7e4bb: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
