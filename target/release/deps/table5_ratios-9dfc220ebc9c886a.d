/root/repo/target/release/deps/table5_ratios-9dfc220ebc9c886a.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/release/deps/table5_ratios-9dfc220ebc9c886a: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
