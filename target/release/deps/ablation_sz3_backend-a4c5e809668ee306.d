/root/repo/target/release/deps/ablation_sz3_backend-a4c5e809668ee306.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/release/deps/ablation_sz3_backend-a4c5e809668ee306: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
