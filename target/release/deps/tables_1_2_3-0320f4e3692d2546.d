/root/repo/target/release/deps/tables_1_2_3-0320f4e3692d2546.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/release/deps/tables_1_2_3-0320f4e3692d2546: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
