/root/repo/target/release/deps/table5_ratios-d912ce14fe1e757e.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/release/deps/table5_ratios-d912ce14fe1e757e: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
