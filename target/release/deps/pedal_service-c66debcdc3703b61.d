/root/repo/target/release/deps/pedal_service-c66debcdc3703b61.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/release/deps/libpedal_service-c66debcdc3703b61.rlib: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/release/deps/libpedal_service-c66debcdc3703b61.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
