/root/repo/target/release/deps/bench-c96a535cabaf9f17.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-c96a535cabaf9f17.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-c96a535cabaf9f17.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
