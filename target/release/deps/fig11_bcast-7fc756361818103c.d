/root/repo/target/release/deps/fig11_bcast-7fc756361818103c.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/release/deps/fig11_bcast-7fc756361818103c: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
