/root/repo/target/release/deps/ablation_contention-40b078b90f9b5df8.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/release/deps/ablation_contention-40b078b90f9b5df8: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
