/root/repo/target/release/deps/fig11_bcast-9c9d6da70c5df3df.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/release/deps/fig11_bcast-9c9d6da70c5df3df: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
