/root/repo/target/release/deps/ablation_hybrid-9d1447b90c84fe42.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-9d1447b90c84fe42: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
