/root/repo/target/release/deps/ablation_host_offload-d8cd854141d66f0b.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/release/deps/ablation_host_offload-d8cd854141d66f0b: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
