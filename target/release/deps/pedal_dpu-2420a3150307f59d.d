/root/repo/target/release/deps/pedal_dpu-2420a3150307f59d.d: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

/root/repo/target/release/deps/libpedal_dpu-2420a3150307f59d.rlib: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

/root/repo/target/release/deps/libpedal_dpu-2420a3150307f59d.rmeta: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

crates/pedal-dpu/src/lib.rs:
crates/pedal-dpu/src/bytes.rs:
crates/pedal-dpu/src/clock.rs:
crates/pedal-dpu/src/costs.rs:
crates/pedal-dpu/src/platform.rs:
crates/pedal-dpu/src/rng.rs:
