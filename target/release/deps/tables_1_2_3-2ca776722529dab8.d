/root/repo/target/release/deps/tables_1_2_3-2ca776722529dab8.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/release/deps/tables_1_2_3-2ca776722529dab8: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
