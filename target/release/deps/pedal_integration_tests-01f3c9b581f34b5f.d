/root/repo/target/release/deps/pedal_integration_tests-01f3c9b581f34b5f.d: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-01f3c9b581f34b5f.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-01f3c9b581f34b5f.rmeta: tests/src/lib.rs

tests/src/lib.rs:
