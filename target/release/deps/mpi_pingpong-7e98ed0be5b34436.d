/root/repo/target/release/deps/mpi_pingpong-7e98ed0be5b34436.d: examples/mpi_pingpong.rs

/root/repo/target/release/deps/mpi_pingpong-7e98ed0be5b34436: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
