/root/repo/target/release/deps/quickstart-65df09812a3d9cdb.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-65df09812a3d9cdb: examples/quickstart.rs

examples/quickstart.rs:
