/root/repo/target/release/deps/tables_1_2_3-a2c93908b9f4791f.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/release/deps/tables_1_2_3-a2c93908b9f4791f: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
