/root/repo/target/release/deps/ablation_sz3_backend-687cfb0b68082b70.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/release/deps/ablation_sz3_backend-687cfb0b68082b70: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
