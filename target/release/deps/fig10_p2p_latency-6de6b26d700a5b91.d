/root/repo/target/release/deps/fig10_p2p_latency-6de6b26d700a5b91.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/release/deps/fig10_p2p_latency-6de6b26d700a5b91: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
