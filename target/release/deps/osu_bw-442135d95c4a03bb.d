/root/repo/target/release/deps/osu_bw-442135d95c4a03bb.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/release/deps/osu_bw-442135d95c4a03bb: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
