/root/repo/target/release/deps/fig7_lossless_breakdown-d912bc0d4f00b4f4.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/release/deps/fig7_lossless_breakdown-d912bc0d4f00b4f4: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
