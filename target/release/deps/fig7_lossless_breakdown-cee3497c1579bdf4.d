/root/repo/target/release/deps/fig7_lossless_breakdown-cee3497c1579bdf4.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/release/deps/fig7_lossless_breakdown-cee3497c1579bdf4: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
