/root/repo/target/release/deps/ablation_host_offload-d137c043c766fcdc.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/release/deps/ablation_host_offload-d137c043c766fcdc: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
