/root/repo/target/release/deps/table5_ratios-24ba0d1ac1d8db5f.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/release/deps/table5_ratios-24ba0d1ac1d8db5f: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
