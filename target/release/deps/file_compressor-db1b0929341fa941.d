/root/repo/target/release/deps/file_compressor-db1b0929341fa941.d: examples/file_compressor.rs

/root/repo/target/release/deps/file_compressor-db1b0929341fa941: examples/file_compressor.rs

examples/file_compressor.rs:
