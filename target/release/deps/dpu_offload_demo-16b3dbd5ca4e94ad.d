/root/repo/target/release/deps/dpu_offload_demo-16b3dbd5ca4e94ad.d: examples/dpu_offload_demo.rs

/root/repo/target/release/deps/dpu_offload_demo-16b3dbd5ca4e94ad: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
