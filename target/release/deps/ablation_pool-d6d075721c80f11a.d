/root/repo/target/release/deps/ablation_pool-d6d075721c80f11a.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-d6d075721c80f11a: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
