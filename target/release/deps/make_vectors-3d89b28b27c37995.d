/root/repo/target/release/deps/make_vectors-3d89b28b27c37995.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/release/deps/make_vectors-3d89b28b27c37995: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
