/root/repo/target/release/deps/table5_ratios-519d684279dd3d18.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/release/deps/table5_ratios-519d684279dd3d18: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
