/root/repo/target/release/deps/obs_smoke-0b3ce542ade39c18.d: crates/bench/src/bin/obs_smoke.rs

/root/repo/target/release/deps/obs_smoke-0b3ce542ade39c18: crates/bench/src/bin/obs_smoke.rs

crates/bench/src/bin/obs_smoke.rs:
