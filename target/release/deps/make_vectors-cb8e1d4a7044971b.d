/root/repo/target/release/deps/make_vectors-cb8e1d4a7044971b.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/release/deps/make_vectors-cb8e1d4a7044971b: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
