/root/repo/target/release/deps/mpi_pingpong-5f998a78d59cdf3d.d: examples/mpi_pingpong.rs

/root/repo/target/release/deps/mpi_pingpong-5f998a78d59cdf3d: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
