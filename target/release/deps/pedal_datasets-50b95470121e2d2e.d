/root/repo/target/release/deps/pedal_datasets-50b95470121e2d2e.d: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

/root/repo/target/release/deps/libpedal_datasets-50b95470121e2d2e.rlib: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

/root/repo/target/release/deps/libpedal_datasets-50b95470121e2d2e.rmeta: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

crates/pedal-datasets/src/lib.rs:
crates/pedal-datasets/src/generators.rs:
