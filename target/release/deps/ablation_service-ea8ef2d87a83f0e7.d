/root/repo/target/release/deps/ablation_service-ea8ef2d87a83f0e7.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-ea8ef2d87a83f0e7: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
