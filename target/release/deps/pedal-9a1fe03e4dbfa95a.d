/root/repo/target/release/deps/pedal-9a1fe03e4dbfa95a.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/release/deps/libpedal-9a1fe03e4dbfa95a.rlib: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/release/deps/libpedal-9a1fe03e4dbfa95a.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
