/root/repo/target/release/deps/tables_1_2_3-70d0d10a293b21bb.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/release/deps/tables_1_2_3-70d0d10a293b21bb: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
