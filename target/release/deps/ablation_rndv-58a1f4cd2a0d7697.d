/root/repo/target/release/deps/ablation_rndv-58a1f4cd2a0d7697.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/release/deps/ablation_rndv-58a1f4cd2a0d7697: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
