/root/repo/target/release/deps/fig7_lossless_breakdown-fb2635f9e1ce0c39.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/release/deps/fig7_lossless_breakdown-fb2635f9e1ce0c39: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
