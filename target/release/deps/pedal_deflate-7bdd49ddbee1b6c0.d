/root/repo/target/release/deps/pedal_deflate-7bdd49ddbee1b6c0.d: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

/root/repo/target/release/deps/libpedal_deflate-7bdd49ddbee1b6c0.rlib: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

/root/repo/target/release/deps/libpedal_deflate-7bdd49ddbee1b6c0.rmeta: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

crates/pedal-deflate/src/lib.rs:
crates/pedal-deflate/src/bitio.rs:
crates/pedal-deflate/src/consts.rs:
crates/pedal-deflate/src/encoder.rs:
crates/pedal-deflate/src/huffman.rs:
crates/pedal-deflate/src/inflate.rs:
crates/pedal-deflate/src/lz77.rs:
