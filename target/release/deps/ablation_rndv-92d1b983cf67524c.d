/root/repo/target/release/deps/ablation_rndv-92d1b983cf67524c.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/release/deps/ablation_rndv-92d1b983cf67524c: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
