/root/repo/target/release/deps/par_determinism-b0210539f14884c5.d: crates/bench/src/bin/par_determinism.rs

/root/repo/target/release/deps/par_determinism-b0210539f14884c5: crates/bench/src/bin/par_determinism.rs

crates/bench/src/bin/par_determinism.rs:
