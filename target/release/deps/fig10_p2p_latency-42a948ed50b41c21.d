/root/repo/target/release/deps/fig10_p2p_latency-42a948ed50b41c21.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/release/deps/fig10_p2p_latency-42a948ed50b41c21: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
