/root/repo/target/release/deps/ablation_hybrid-2c52f56b97f17eb0.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-2c52f56b97f17eb0: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
