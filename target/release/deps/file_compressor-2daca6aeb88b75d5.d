/root/repo/target/release/deps/file_compressor-2daca6aeb88b75d5.d: examples/file_compressor.rs

/root/repo/target/release/deps/file_compressor-2daca6aeb88b75d5: examples/file_compressor.rs

examples/file_compressor.rs:
