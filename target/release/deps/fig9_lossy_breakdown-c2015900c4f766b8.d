/root/repo/target/release/deps/fig9_lossy_breakdown-c2015900c4f766b8.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/release/deps/fig9_lossy_breakdown-c2015900c4f766b8: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
