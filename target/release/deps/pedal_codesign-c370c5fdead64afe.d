/root/repo/target/release/deps/pedal_codesign-c370c5fdead64afe.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/release/deps/libpedal_codesign-c370c5fdead64afe.rlib: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/release/deps/libpedal_codesign-c370c5fdead64afe.rmeta: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
