/root/repo/target/release/deps/ablation_hybrid-1cc2e130f79c1a0b.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/release/deps/ablation_hybrid-1cc2e130f79c1a0b: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
