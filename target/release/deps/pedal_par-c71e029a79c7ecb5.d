/root/repo/target/release/deps/pedal_par-c71e029a79c7ecb5.d: crates/pedal-par/src/lib.rs

/root/repo/target/release/deps/libpedal_par-c71e029a79c7ecb5.rlib: crates/pedal-par/src/lib.rs

/root/repo/target/release/deps/libpedal_par-c71e029a79c7ecb5.rmeta: crates/pedal-par/src/lib.rs

crates/pedal-par/src/lib.rs:
