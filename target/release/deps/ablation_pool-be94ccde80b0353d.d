/root/repo/target/release/deps/ablation_pool-be94ccde80b0353d.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-be94ccde80b0353d: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
