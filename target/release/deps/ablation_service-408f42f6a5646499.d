/root/repo/target/release/deps/ablation_service-408f42f6a5646499.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-408f42f6a5646499: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
