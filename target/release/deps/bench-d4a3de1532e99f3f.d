/root/repo/target/release/deps/bench-d4a3de1532e99f3f.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-d4a3de1532e99f3f.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libbench-d4a3de1532e99f3f.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
