/root/repo/target/release/deps/ablation_par-163000e867751c8a.d: crates/bench/src/bin/ablation_par.rs

/root/repo/target/release/deps/ablation_par-163000e867751c8a: crates/bench/src/bin/ablation_par.rs

crates/bench/src/bin/ablation_par.rs:
