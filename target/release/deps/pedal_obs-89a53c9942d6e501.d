/root/repo/target/release/deps/pedal_obs-89a53c9942d6e501.d: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

/root/repo/target/release/deps/libpedal_obs-89a53c9942d6e501.rlib: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

/root/repo/target/release/deps/libpedal_obs-89a53c9942d6e501.rmeta: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

crates/pedal-obs/src/lib.rs:
crates/pedal-obs/src/event.rs:
crates/pedal-obs/src/hist.rs:
crates/pedal-obs/src/json.rs:
crates/pedal-obs/src/registry.rs:
crates/pedal-obs/src/ring.rs:
crates/pedal-obs/src/trace.rs:
