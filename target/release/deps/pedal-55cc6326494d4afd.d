/root/repo/target/release/deps/pedal-55cc6326494d4afd.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/release/deps/libpedal-55cc6326494d4afd.rlib: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/release/deps/libpedal-55cc6326494d4afd.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
