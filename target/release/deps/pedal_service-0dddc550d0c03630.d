/root/repo/target/release/deps/pedal_service-0dddc550d0c03630.d: crates/pedal-service/src/lib.rs

/root/repo/target/release/deps/libpedal_service-0dddc550d0c03630.rlib: crates/pedal-service/src/lib.rs

/root/repo/target/release/deps/libpedal_service-0dddc550d0c03630.rmeta: crates/pedal-service/src/lib.rs

crates/pedal-service/src/lib.rs:
