/root/repo/target/release/deps/ablation_host_offload-f8d9ddc5d09b3894.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/release/deps/ablation_host_offload-f8d9ddc5d09b3894: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
