/root/repo/target/release/deps/dpu_offload_demo-521439cf1aaee2e1.d: examples/dpu_offload_demo.rs

/root/repo/target/release/deps/dpu_offload_demo-521439cf1aaee2e1: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
