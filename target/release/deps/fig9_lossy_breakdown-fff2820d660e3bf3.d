/root/repo/target/release/deps/fig9_lossy_breakdown-fff2820d660e3bf3.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/release/deps/fig9_lossy_breakdown-fff2820d660e3bf3: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
