/root/repo/target/release/deps/osu_bw-941d0ef897a989c3.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/release/deps/osu_bw-941d0ef897a989c3: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
