/root/repo/target/release/deps/halo_exchange-8e4ca973d871791d.d: examples/halo_exchange.rs

/root/repo/target/release/deps/halo_exchange-8e4ca973d871791d: examples/halo_exchange.rs

examples/halo_exchange.rs:
