/root/repo/target/release/deps/pedal_testkit-298be4926855fd5d.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-298be4926855fd5d.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-298be4926855fd5d.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
