/root/repo/target/release/deps/pedal_integration_tests-aa3c7ded00c55371.d: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-aa3c7ded00c55371.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-aa3c7ded00c55371.rmeta: tests/src/lib.rs

tests/src/lib.rs:
