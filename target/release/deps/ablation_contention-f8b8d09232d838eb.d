/root/repo/target/release/deps/ablation_contention-f8b8d09232d838eb.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/release/deps/ablation_contention-f8b8d09232d838eb: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
