/root/repo/target/release/deps/pedal_testkit-128c4a53b5b42813.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-128c4a53b5b42813.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/release/deps/libpedal_testkit-128c4a53b5b42813.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
