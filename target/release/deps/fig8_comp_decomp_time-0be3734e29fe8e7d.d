/root/repo/target/release/deps/fig8_comp_decomp_time-0be3734e29fe8e7d.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/release/deps/fig8_comp_decomp_time-0be3734e29fe8e7d: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
