/root/repo/target/release/deps/fig10_p2p_latency-2028dcf2b34dfac2.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/release/deps/fig10_p2p_latency-2028dcf2b34dfac2: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
