/root/repo/target/release/deps/fuzz_sweep-c238cdf8a0e2ca0c.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/release/deps/fuzz_sweep-c238cdf8a0e2ca0c: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
