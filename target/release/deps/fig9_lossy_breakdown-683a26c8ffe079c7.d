/root/repo/target/release/deps/fig9_lossy_breakdown-683a26c8ffe079c7.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/release/deps/fig9_lossy_breakdown-683a26c8ffe079c7: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
