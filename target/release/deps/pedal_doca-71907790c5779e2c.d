/root/repo/target/release/deps/pedal_doca-71907790c5779e2c.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/release/deps/libpedal_doca-71907790c5779e2c.rlib: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/release/deps/libpedal_doca-71907790c5779e2c.rmeta: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
