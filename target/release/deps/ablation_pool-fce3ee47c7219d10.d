/root/repo/target/release/deps/ablation_pool-fce3ee47c7219d10.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/release/deps/ablation_pool-fce3ee47c7219d10: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
