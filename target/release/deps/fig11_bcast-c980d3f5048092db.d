/root/repo/target/release/deps/fig11_bcast-c980d3f5048092db.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/release/deps/fig11_bcast-c980d3f5048092db: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
