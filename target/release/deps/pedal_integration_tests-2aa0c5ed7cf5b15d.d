/root/repo/target/release/deps/pedal_integration_tests-2aa0c5ed7cf5b15d.d: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-2aa0c5ed7cf5b15d.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libpedal_integration_tests-2aa0c5ed7cf5b15d.rmeta: tests/src/lib.rs

tests/src/lib.rs:
