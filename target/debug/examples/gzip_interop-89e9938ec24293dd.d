/root/repo/target/debug/examples/gzip_interop-89e9938ec24293dd.d: crates/pedal-zlib/examples/gzip_interop.rs

/root/repo/target/debug/examples/gzip_interop-89e9938ec24293dd: crates/pedal-zlib/examples/gzip_interop.rs

crates/pedal-zlib/examples/gzip_interop.rs:
