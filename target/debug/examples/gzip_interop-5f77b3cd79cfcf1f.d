/root/repo/target/debug/examples/gzip_interop-5f77b3cd79cfcf1f.d: crates/pedal-zlib/examples/gzip_interop.rs Cargo.toml

/root/repo/target/debug/examples/libgzip_interop-5f77b3cd79cfcf1f.rmeta: crates/pedal-zlib/examples/gzip_interop.rs Cargo.toml

crates/pedal-zlib/examples/gzip_interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
