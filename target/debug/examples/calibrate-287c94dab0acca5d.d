/root/repo/target/debug/examples/calibrate-287c94dab0acca5d.d: crates/pedal-datasets/examples/calibrate.rs Cargo.toml

/root/repo/target/debug/examples/libcalibrate-287c94dab0acca5d.rmeta: crates/pedal-datasets/examples/calibrate.rs Cargo.toml

crates/pedal-datasets/examples/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
