/root/repo/target/debug/examples/calibrate-26a0748fc139c87e.d: crates/pedal-datasets/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-26a0748fc139c87e: crates/pedal-datasets/examples/calibrate.rs

crates/pedal-datasets/examples/calibrate.rs:
