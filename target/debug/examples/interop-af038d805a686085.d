/root/repo/target/debug/examples/interop-af038d805a686085.d: crates/pedal-zlib/examples/interop.rs

/root/repo/target/debug/examples/interop-af038d805a686085: crates/pedal-zlib/examples/interop.rs

crates/pedal-zlib/examples/interop.rs:
