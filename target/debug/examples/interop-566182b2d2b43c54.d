/root/repo/target/debug/examples/interop-566182b2d2b43c54.d: crates/pedal-zlib/examples/interop.rs Cargo.toml

/root/repo/target/debug/examples/libinterop-566182b2d2b43c54.rmeta: crates/pedal-zlib/examples/interop.rs Cargo.toml

crates/pedal-zlib/examples/interop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
