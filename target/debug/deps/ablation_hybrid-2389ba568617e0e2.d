/root/repo/target/debug/deps/ablation_hybrid-2389ba568617e0e2.d: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hybrid-2389ba568617e0e2.rmeta: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
