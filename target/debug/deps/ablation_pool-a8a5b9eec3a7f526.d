/root/repo/target/debug/deps/ablation_pool-a8a5b9eec3a7f526.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-a8a5b9eec3a7f526: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
