/root/repo/target/debug/deps/fig7_lossless_breakdown-4fedafb7dee7329c.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-4fedafb7dee7329c: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
