/root/repo/target/debug/deps/ablation_service-b3bca369299cb120.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-b3bca369299cb120: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
