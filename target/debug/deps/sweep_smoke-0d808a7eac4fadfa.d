/root/repo/target/debug/deps/sweep_smoke-0d808a7eac4fadfa.d: crates/pedal-testkit/tests/sweep_smoke.rs

/root/repo/target/debug/deps/sweep_smoke-0d808a7eac4fadfa: crates/pedal-testkit/tests/sweep_smoke.rs

crates/pedal-testkit/tests/sweep_smoke.rs:
