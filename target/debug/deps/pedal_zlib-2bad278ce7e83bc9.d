/root/repo/target/debug/deps/pedal_zlib-2bad278ce7e83bc9.d: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_zlib-2bad278ce7e83bc9.rmeta: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs Cargo.toml

crates/pedal-zlib/src/lib.rs:
crates/pedal-zlib/src/adler.rs:
crates/pedal-zlib/src/crc32.rs:
crates/pedal-zlib/src/gzip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
