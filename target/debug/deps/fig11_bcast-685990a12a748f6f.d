/root/repo/target/debug/deps/fig11_bcast-685990a12a748f6f.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-685990a12a748f6f: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
