/root/repo/target/debug/deps/osu_bw-2d3c658215330eef.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-2d3c658215330eef: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
