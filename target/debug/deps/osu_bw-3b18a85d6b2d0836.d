/root/repo/target/debug/deps/osu_bw-3b18a85d6b2d0836.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-3b18a85d6b2d0836: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
