/root/repo/target/debug/deps/pedal-f7cae940d9e14b84.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libpedal-f7cae940d9e14b84.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs Cargo.toml

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
