/root/repo/target/debug/deps/fig10_p2p_latency-95cac2de02d8d104.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-95cac2de02d8d104: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
