/root/repo/target/debug/deps/pedal_testkit-a75e7444570032e4.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_testkit-a75e7444570032e4.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs Cargo.toml

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
