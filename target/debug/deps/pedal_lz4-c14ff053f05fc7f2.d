/root/repo/target/debug/deps/pedal_lz4-c14ff053f05fc7f2.d: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_lz4-c14ff053f05fc7f2.rmeta: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs Cargo.toml

crates/pedal-lz4/src/lib.rs:
crates/pedal-lz4/src/block.rs:
crates/pedal-lz4/src/frame.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
