/root/repo/target/debug/deps/table5_ratios-b583dac863e68afb.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-b583dac863e68afb: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
