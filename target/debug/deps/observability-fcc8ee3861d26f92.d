/root/repo/target/debug/deps/observability-fcc8ee3861d26f92.d: crates/pedal-service/tests/observability.rs

/root/repo/target/debug/deps/observability-fcc8ee3861d26f92: crates/pedal-service/tests/observability.rs

crates/pedal-service/tests/observability.rs:
