/root/repo/target/debug/deps/ablation_contention-dbad9b3ed7ba14aa.d: crates/bench/src/bin/ablation_contention.rs Cargo.toml

/root/repo/target/debug/deps/libablation_contention-dbad9b3ed7ba14aa.rmeta: crates/bench/src/bin/ablation_contention.rs Cargo.toml

crates/bench/src/bin/ablation_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
