/root/repo/target/debug/deps/paper_claims-baf87c7ca755b0ef.d: tests/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-baf87c7ca755b0ef: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
