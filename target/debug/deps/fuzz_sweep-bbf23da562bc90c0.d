/root/repo/target/debug/deps/fuzz_sweep-bbf23da562bc90c0.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_sweep-bbf23da562bc90c0.rmeta: crates/pedal-testkit/src/bin/fuzz_sweep.rs Cargo.toml

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
