/root/repo/target/debug/deps/ablation_service-549b29c34d11d5a7.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-549b29c34d11d5a7: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
