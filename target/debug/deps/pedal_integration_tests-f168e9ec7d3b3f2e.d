/root/repo/target/debug/deps/pedal_integration_tests-f168e9ec7d3b3f2e.d: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-f168e9ec7d3b3f2e.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-f168e9ec7d3b3f2e.rmeta: tests/src/lib.rs

tests/src/lib.rs:
