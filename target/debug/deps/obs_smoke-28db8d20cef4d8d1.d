/root/repo/target/debug/deps/obs_smoke-28db8d20cef4d8d1.d: crates/bench/src/bin/obs_smoke.rs

/root/repo/target/debug/deps/obs_smoke-28db8d20cef4d8d1: crates/bench/src/bin/obs_smoke.rs

crates/bench/src/bin/obs_smoke.rs:
