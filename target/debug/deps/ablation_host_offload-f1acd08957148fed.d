/root/repo/target/debug/deps/ablation_host_offload-f1acd08957148fed.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-f1acd08957148fed: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
