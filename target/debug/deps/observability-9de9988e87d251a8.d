/root/repo/target/debug/deps/observability-9de9988e87d251a8.d: crates/pedal-service/tests/observability.rs

/root/repo/target/debug/deps/observability-9de9988e87d251a8: crates/pedal-service/tests/observability.rs

crates/pedal-service/tests/observability.rs:
