/root/repo/target/debug/deps/fig10_p2p_latency-24fd046d8c07da31.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-24fd046d8c07da31: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
