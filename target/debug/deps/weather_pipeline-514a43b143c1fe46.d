/root/repo/target/debug/deps/weather_pipeline-514a43b143c1fe46.d: examples/weather_pipeline.rs

/root/repo/target/debug/deps/weather_pipeline-514a43b143c1fe46: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
