/root/repo/target/debug/deps/osu_bw-c8f86de4dd4aa863.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-c8f86de4dd4aa863: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
