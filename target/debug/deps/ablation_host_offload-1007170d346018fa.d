/root/repo/target/debug/deps/ablation_host_offload-1007170d346018fa.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-1007170d346018fa: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
