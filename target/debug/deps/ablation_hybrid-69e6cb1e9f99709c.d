/root/repo/target/debug/deps/ablation_hybrid-69e6cb1e9f99709c.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-69e6cb1e9f99709c: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
