/root/repo/target/debug/deps/pedal_deflate-54b86d13493d25be.d: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

/root/repo/target/debug/deps/libpedal_deflate-54b86d13493d25be.rlib: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

/root/repo/target/debug/deps/libpedal_deflate-54b86d13493d25be.rmeta: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

crates/pedal-deflate/src/lib.rs:
crates/pedal-deflate/src/bitio.rs:
crates/pedal-deflate/src/consts.rs:
crates/pedal-deflate/src/encoder.rs:
crates/pedal-deflate/src/huffman.rs:
crates/pedal-deflate/src/inflate.rs:
crates/pedal-deflate/src/lz77.rs:
