/root/repo/target/debug/deps/pedal_service-e105487c2f96b94a.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_service-e105487c2f96b94a.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs Cargo.toml

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
