/root/repo/target/debug/deps/pedal_service-f42393f7bd010218.d: crates/pedal-service/src/lib.rs

/root/repo/target/debug/deps/pedal_service-f42393f7bd010218: crates/pedal-service/src/lib.rs

crates/pedal-service/src/lib.rs:
