/root/repo/target/debug/deps/proptest_hostile-6f2408c844acbe0e.d: crates/pedal-sz3/tests/proptest_hostile.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_hostile-6f2408c844acbe0e.rmeta: crates/pedal-sz3/tests/proptest_hostile.rs Cargo.toml

crates/pedal-sz3/tests/proptest_hostile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
