/root/repo/target/debug/deps/ablation_contention-218a6efca1ddbfa2.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-218a6efca1ddbfa2: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
