/root/repo/target/debug/deps/weather_pipeline-a478e9b6505b13d5.d: examples/weather_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libweather_pipeline-a478e9b6505b13d5.rmeta: examples/weather_pipeline.rs Cargo.toml

examples/weather_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
