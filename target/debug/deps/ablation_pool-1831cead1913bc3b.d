/root/repo/target/debug/deps/ablation_pool-1831cead1913bc3b.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-1831cead1913bc3b: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
