/root/repo/target/debug/deps/ablation_contention-ced49586f84ba59b.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-ced49586f84ba59b: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
