/root/repo/target/debug/deps/table5_ratios-ea0bf13b62ea6e8e.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-ea0bf13b62ea6e8e: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
