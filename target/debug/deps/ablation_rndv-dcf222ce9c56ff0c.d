/root/repo/target/debug/deps/ablation_rndv-dcf222ce9c56ff0c.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-dcf222ce9c56ff0c: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
