/root/repo/target/debug/deps/mpi_pingpong-1f98c1c3e4ad06d9.d: examples/mpi_pingpong.rs Cargo.toml

/root/repo/target/debug/deps/libmpi_pingpong-1f98c1c3e4ad06d9.rmeta: examples/mpi_pingpong.rs Cargo.toml

examples/mpi_pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
