/root/repo/target/debug/deps/pedal_datasets-f94358c55b5e878c.d: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_datasets-f94358c55b5e878c.rmeta: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs Cargo.toml

crates/pedal-datasets/src/lib.rs:
crates/pedal-datasets/src/generators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
