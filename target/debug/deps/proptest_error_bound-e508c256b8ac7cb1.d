/root/repo/target/debug/deps/proptest_error_bound-e508c256b8ac7cb1.d: crates/pedal-sz3/tests/proptest_error_bound.rs

/root/repo/target/debug/deps/proptest_error_bound-e508c256b8ac7cb1: crates/pedal-sz3/tests/proptest_error_bound.rs

crates/pedal-sz3/tests/proptest_error_bound.rs:
