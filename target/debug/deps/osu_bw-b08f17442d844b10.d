/root/repo/target/debug/deps/osu_bw-b08f17442d844b10.d: crates/bench/src/bin/osu_bw.rs Cargo.toml

/root/repo/target/debug/deps/libosu_bw-b08f17442d844b10.rmeta: crates/bench/src/bin/osu_bw.rs Cargo.toml

crates/bench/src/bin/osu_bw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
