/root/repo/target/debug/deps/ablation_rndv-4a86376e96ca9ff3.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-4a86376e96ca9ff3: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
