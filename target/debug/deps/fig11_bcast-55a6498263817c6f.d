/root/repo/target/debug/deps/fig11_bcast-55a6498263817c6f.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-55a6498263817c6f: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
