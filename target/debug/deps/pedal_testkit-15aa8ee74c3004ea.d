/root/repo/target/debug/deps/pedal_testkit-15aa8ee74c3004ea.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-15aa8ee74c3004ea.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-15aa8ee74c3004ea.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
