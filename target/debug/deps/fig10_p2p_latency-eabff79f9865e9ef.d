/root/repo/target/debug/deps/fig10_p2p_latency-eabff79f9865e9ef.d: crates/bench/src/bin/fig10_p2p_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_p2p_latency-eabff79f9865e9ef.rmeta: crates/bench/src/bin/fig10_p2p_latency.rs Cargo.toml

crates/bench/src/bin/fig10_p2p_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
