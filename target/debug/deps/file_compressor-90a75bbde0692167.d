/root/repo/target/debug/deps/file_compressor-90a75bbde0692167.d: examples/file_compressor.rs

/root/repo/target/debug/deps/file_compressor-90a75bbde0692167: examples/file_compressor.rs

examples/file_compressor.rs:
