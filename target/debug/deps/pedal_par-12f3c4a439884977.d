/root/repo/target/debug/deps/pedal_par-12f3c4a439884977.d: crates/pedal-par/src/lib.rs

/root/repo/target/debug/deps/libpedal_par-12f3c4a439884977.rlib: crates/pedal-par/src/lib.rs

/root/repo/target/debug/deps/libpedal_par-12f3c4a439884977.rmeta: crates/pedal-par/src/lib.rs

crates/pedal-par/src/lib.rs:
