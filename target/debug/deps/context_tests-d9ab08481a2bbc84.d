/root/repo/target/debug/deps/context_tests-d9ab08481a2bbc84.d: crates/pedal/tests/context_tests.rs

/root/repo/target/debug/deps/context_tests-d9ab08481a2bbc84: crates/pedal/tests/context_tests.rs

crates/pedal/tests/context_tests.rs:
