/root/repo/target/debug/deps/pedal_integration_tests-dd6dec74a9fe1e9f.d: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-dd6dec74a9fe1e9f.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-dd6dec74a9fe1e9f.rmeta: tests/src/lib.rs

tests/src/lib.rs:
