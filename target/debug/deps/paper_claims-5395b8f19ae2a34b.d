/root/repo/target/debug/deps/paper_claims-5395b8f19ae2a34b.d: tests/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-5395b8f19ae2a34b: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
