/root/repo/target/debug/deps/pedal_integration_tests-062ccf350eb80f57.d: tests/src/lib.rs

/root/repo/target/debug/deps/pedal_integration_tests-062ccf350eb80f57: tests/src/lib.rs

tests/src/lib.rs:
