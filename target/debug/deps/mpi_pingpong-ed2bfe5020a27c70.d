/root/repo/target/debug/deps/mpi_pingpong-ed2bfe5020a27c70.d: examples/mpi_pingpong.rs Cargo.toml

/root/repo/target/debug/deps/libmpi_pingpong-ed2bfe5020a27c70.rmeta: examples/mpi_pingpong.rs Cargo.toml

examples/mpi_pingpong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
