/root/repo/target/debug/deps/fuzz_sweep-77543d91e9af18a1.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-77543d91e9af18a1: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
