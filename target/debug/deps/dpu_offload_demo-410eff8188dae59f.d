/root/repo/target/debug/deps/dpu_offload_demo-410eff8188dae59f.d: examples/dpu_offload_demo.rs Cargo.toml

/root/repo/target/debug/deps/libdpu_offload_demo-410eff8188dae59f.rmeta: examples/dpu_offload_demo.rs Cargo.toml

examples/dpu_offload_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
