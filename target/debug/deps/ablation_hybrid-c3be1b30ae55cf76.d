/root/repo/target/debug/deps/ablation_hybrid-c3be1b30ae55cf76.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-c3be1b30ae55cf76: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
