/root/repo/target/debug/deps/par_determinism-395f9ccc9dfd6c0e.d: crates/bench/src/bin/par_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpar_determinism-395f9ccc9dfd6c0e.rmeta: crates/bench/src/bin/par_determinism.rs Cargo.toml

crates/bench/src/bin/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
