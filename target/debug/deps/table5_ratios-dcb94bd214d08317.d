/root/repo/target/debug/deps/table5_ratios-dcb94bd214d08317.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-dcb94bd214d08317: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
