/root/repo/target/debug/deps/fuzz_sweep-69d8701c53512966.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-69d8701c53512966: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
