/root/repo/target/debug/deps/ablation_rndv-78446be1a3c18856.d: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rndv-78446be1a3c18856.rmeta: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

crates/bench/src/bin/ablation_rndv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
