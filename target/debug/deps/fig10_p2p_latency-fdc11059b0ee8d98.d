/root/repo/target/debug/deps/fig10_p2p_latency-fdc11059b0ee8d98.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-fdc11059b0ee8d98: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
