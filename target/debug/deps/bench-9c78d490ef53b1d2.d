/root/repo/target/debug/deps/bench-9c78d490ef53b1d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-9c78d490ef53b1d2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
