/root/repo/target/debug/deps/fig10_p2p_latency-f63ab9cc9419a24c.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-f63ab9cc9419a24c: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
