/root/repo/target/debug/deps/ablation_sz3_backend-76f74843b7f0fa5b.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-76f74843b7f0fa5b: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
