/root/repo/target/debug/deps/fig7_lossless_breakdown-c774d5332dae73ab.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-c774d5332dae73ab: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
