/root/repo/target/debug/deps/full_stack-76b0d842354395ee.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-76b0d842354395ee: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
