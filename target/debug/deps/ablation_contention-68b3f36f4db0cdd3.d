/root/repo/target/debug/deps/ablation_contention-68b3f36f4db0cdd3.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-68b3f36f4db0cdd3: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
