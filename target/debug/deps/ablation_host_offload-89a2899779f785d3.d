/root/repo/target/debug/deps/ablation_host_offload-89a2899779f785d3.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-89a2899779f785d3: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
