/root/repo/target/debug/deps/pedal_mpi-624e5069fd625d0f.d: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_mpi-624e5069fd625d0f.rmeta: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs Cargo.toml

crates/pedal-mpi/src/lib.rs:
crates/pedal-mpi/src/collectives.rs:
crates/pedal-mpi/src/comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
