/root/repo/target/debug/deps/file_compressor-b6d7fbe0b964b9b6.d: examples/file_compressor.rs

/root/repo/target/debug/deps/file_compressor-b6d7fbe0b964b9b6: examples/file_compressor.rs

examples/file_compressor.rs:
