/root/repo/target/debug/deps/service-e975ca8df041ebdd.d: crates/pedal-service/tests/service.rs

/root/repo/target/debug/deps/service-e975ca8df041ebdd: crates/pedal-service/tests/service.rs

crates/pedal-service/tests/service.rs:
