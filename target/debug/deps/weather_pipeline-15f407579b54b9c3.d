/root/repo/target/debug/deps/weather_pipeline-15f407579b54b9c3.d: examples/weather_pipeline.rs

/root/repo/target/debug/deps/weather_pipeline-15f407579b54b9c3: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
