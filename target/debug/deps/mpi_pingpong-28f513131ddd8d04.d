/root/repo/target/debug/deps/mpi_pingpong-28f513131ddd8d04.d: examples/mpi_pingpong.rs

/root/repo/target/debug/deps/mpi_pingpong-28f513131ddd8d04: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
