/root/repo/target/debug/deps/proptest_roundtrip-e94cc1963a60349d.d: crates/pedal-lz4/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-e94cc1963a60349d.rmeta: crates/pedal-lz4/tests/proptest_roundtrip.rs Cargo.toml

crates/pedal-lz4/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
