/root/repo/target/debug/deps/fig10_p2p_latency-eb874379129264ab.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-eb874379129264ab: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
