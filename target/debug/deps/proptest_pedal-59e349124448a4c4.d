/root/repo/target/debug/deps/proptest_pedal-59e349124448a4c4.d: crates/pedal/tests/proptest_pedal.rs

/root/repo/target/debug/deps/proptest_pedal-59e349124448a4c4: crates/pedal/tests/proptest_pedal.rs

crates/pedal/tests/proptest_pedal.rs:
