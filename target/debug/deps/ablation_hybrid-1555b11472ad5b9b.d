/root/repo/target/debug/deps/ablation_hybrid-1555b11472ad5b9b.d: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hybrid-1555b11472ad5b9b.rmeta: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
