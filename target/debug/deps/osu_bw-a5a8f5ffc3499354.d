/root/repo/target/debug/deps/osu_bw-a5a8f5ffc3499354.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-a5a8f5ffc3499354: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
