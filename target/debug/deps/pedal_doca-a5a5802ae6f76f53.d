/root/repo/target/debug/deps/pedal_doca-a5a5802ae6f76f53.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_doca-a5a5802ae6f76f53.rmeta: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs Cargo.toml

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
