/root/repo/target/debug/deps/fig9_lossy_breakdown-552da2374cde27bd.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-552da2374cde27bd: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
