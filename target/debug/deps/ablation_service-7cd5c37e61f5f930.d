/root/repo/target/debug/deps/ablation_service-7cd5c37e61f5f930.d: crates/bench/src/bin/ablation_service.rs Cargo.toml

/root/repo/target/debug/deps/libablation_service-7cd5c37e61f5f930.rmeta: crates/bench/src/bin/ablation_service.rs Cargo.toml

crates/bench/src/bin/ablation_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
