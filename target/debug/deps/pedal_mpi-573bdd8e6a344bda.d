/root/repo/target/debug/deps/pedal_mpi-573bdd8e6a344bda.d: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

/root/repo/target/debug/deps/libpedal_mpi-573bdd8e6a344bda.rlib: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

/root/repo/target/debug/deps/libpedal_mpi-573bdd8e6a344bda.rmeta: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

crates/pedal-mpi/src/lib.rs:
crates/pedal-mpi/src/collectives.rs:
crates/pedal-mpi/src/comm.rs:
