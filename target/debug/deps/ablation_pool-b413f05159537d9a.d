/root/repo/target/debug/deps/ablation_pool-b413f05159537d9a.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-b413f05159537d9a: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
