/root/repo/target/debug/deps/fig9_lossy_breakdown-81e56fef9adff288.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-81e56fef9adff288: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
