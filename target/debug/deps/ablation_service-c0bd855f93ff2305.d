/root/repo/target/debug/deps/ablation_service-c0bd855f93ff2305.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-c0bd855f93ff2305: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
