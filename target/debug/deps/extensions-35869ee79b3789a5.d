/root/repo/target/debug/deps/extensions-35869ee79b3789a5.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-35869ee79b3789a5.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
