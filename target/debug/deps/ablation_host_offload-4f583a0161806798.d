/root/repo/target/debug/deps/ablation_host_offload-4f583a0161806798.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-4f583a0161806798: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
