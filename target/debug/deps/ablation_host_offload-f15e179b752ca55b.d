/root/repo/target/debug/deps/ablation_host_offload-f15e179b752ca55b.d: crates/bench/src/bin/ablation_host_offload.rs Cargo.toml

/root/repo/target/debug/deps/libablation_host_offload-f15e179b752ca55b.rmeta: crates/bench/src/bin/ablation_host_offload.rs Cargo.toml

crates/bench/src/bin/ablation_host_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
