/root/repo/target/debug/deps/ablation_rndv-040067b88335ce09.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-040067b88335ce09: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
