/root/repo/target/debug/deps/full_stack-7294d676e38170dd.d: tests/tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-7294d676e38170dd.rmeta: tests/tests/full_stack.rs Cargo.toml

tests/tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
