/root/repo/target/debug/deps/extensions-4f0b08cfc4da2fa0.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-4f0b08cfc4da2fa0: tests/tests/extensions.rs

tests/tests/extensions.rs:
