/root/repo/target/debug/deps/fig11_bcast-72e83b3c89e39aad.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-72e83b3c89e39aad: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
