/root/repo/target/debug/deps/ablation_host_offload-3318354a92d59801.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-3318354a92d59801: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
