/root/repo/target/debug/deps/context_tests-41e866cc32c049c5.d: crates/pedal/tests/context_tests.rs

/root/repo/target/debug/deps/context_tests-41e866cc32c049c5: crates/pedal/tests/context_tests.rs

crates/pedal/tests/context_tests.rs:
