/root/repo/target/debug/deps/pedal_zlib-cbf807e010f19f32.d: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

/root/repo/target/debug/deps/libpedal_zlib-cbf807e010f19f32.rlib: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

/root/repo/target/debug/deps/libpedal_zlib-cbf807e010f19f32.rmeta: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

crates/pedal-zlib/src/lib.rs:
crates/pedal-zlib/src/adler.rs:
crates/pedal-zlib/src/crc32.rs:
crates/pedal-zlib/src/gzip.rs:
