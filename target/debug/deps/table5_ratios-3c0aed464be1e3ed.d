/root/repo/target/debug/deps/table5_ratios-3c0aed464be1e3ed.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-3c0aed464be1e3ed: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
