/root/repo/target/debug/deps/bench-b0ba10b50698ef22.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-b0ba10b50698ef22.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
