/root/repo/target/debug/deps/codesign_tests-9d9b85e0f8642154.d: crates/pedal-codesign/tests/codesign_tests.rs

/root/repo/target/debug/deps/codesign_tests-9d9b85e0f8642154: crates/pedal-codesign/tests/codesign_tests.rs

crates/pedal-codesign/tests/codesign_tests.rs:
