/root/repo/target/debug/deps/extensions-a2ac25bd7976c042.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-a2ac25bd7976c042: tests/tests/extensions.rs

tests/tests/extensions.rs:
