/root/repo/target/debug/deps/dpu_offload_demo-d19b8d9b14234890.d: examples/dpu_offload_demo.rs

/root/repo/target/debug/deps/dpu_offload_demo-d19b8d9b14234890: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
