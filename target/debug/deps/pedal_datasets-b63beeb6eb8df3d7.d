/root/repo/target/debug/deps/pedal_datasets-b63beeb6eb8df3d7.d: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

/root/repo/target/debug/deps/libpedal_datasets-b63beeb6eb8df3d7.rlib: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

/root/repo/target/debug/deps/libpedal_datasets-b63beeb6eb8df3d7.rmeta: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

crates/pedal-datasets/src/lib.rs:
crates/pedal-datasets/src/generators.rs:
