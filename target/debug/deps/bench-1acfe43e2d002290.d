/root/repo/target/debug/deps/bench-1acfe43e2d002290.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-1acfe43e2d002290.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-1acfe43e2d002290.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
