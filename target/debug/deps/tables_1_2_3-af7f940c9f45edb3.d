/root/repo/target/debug/deps/tables_1_2_3-af7f940c9f45edb3.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-af7f940c9f45edb3: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
