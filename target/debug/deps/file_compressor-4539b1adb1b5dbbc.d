/root/repo/target/debug/deps/file_compressor-4539b1adb1b5dbbc.d: examples/file_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libfile_compressor-4539b1adb1b5dbbc.rmeta: examples/file_compressor.rs Cargo.toml

examples/file_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
