/root/repo/target/debug/deps/ablation_pool-0af146d36a5863f7.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-0af146d36a5863f7: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
