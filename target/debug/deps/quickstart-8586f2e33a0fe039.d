/root/repo/target/debug/deps/quickstart-8586f2e33a0fe039.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-8586f2e33a0fe039: examples/quickstart.rs

examples/quickstart.rs:
