/root/repo/target/debug/deps/pedal_sz3-64709b43f469ea5e.d: crates/pedal-sz3/src/lib.rs crates/pedal-sz3/src/backend.rs crates/pedal-sz3/src/compressor.rs crates/pedal-sz3/src/field.rs crates/pedal-sz3/src/huff.rs crates/pedal-sz3/src/interp_nd.rs crates/pedal-sz3/src/metrics.rs crates/pedal-sz3/src/predictor.rs crates/pedal-sz3/src/quantizer.rs crates/pedal-sz3/src/select.rs crates/pedal-sz3/src/varint.rs

/root/repo/target/debug/deps/libpedal_sz3-64709b43f469ea5e.rlib: crates/pedal-sz3/src/lib.rs crates/pedal-sz3/src/backend.rs crates/pedal-sz3/src/compressor.rs crates/pedal-sz3/src/field.rs crates/pedal-sz3/src/huff.rs crates/pedal-sz3/src/interp_nd.rs crates/pedal-sz3/src/metrics.rs crates/pedal-sz3/src/predictor.rs crates/pedal-sz3/src/quantizer.rs crates/pedal-sz3/src/select.rs crates/pedal-sz3/src/varint.rs

/root/repo/target/debug/deps/libpedal_sz3-64709b43f469ea5e.rmeta: crates/pedal-sz3/src/lib.rs crates/pedal-sz3/src/backend.rs crates/pedal-sz3/src/compressor.rs crates/pedal-sz3/src/field.rs crates/pedal-sz3/src/huff.rs crates/pedal-sz3/src/interp_nd.rs crates/pedal-sz3/src/metrics.rs crates/pedal-sz3/src/predictor.rs crates/pedal-sz3/src/quantizer.rs crates/pedal-sz3/src/select.rs crates/pedal-sz3/src/varint.rs

crates/pedal-sz3/src/lib.rs:
crates/pedal-sz3/src/backend.rs:
crates/pedal-sz3/src/compressor.rs:
crates/pedal-sz3/src/field.rs:
crates/pedal-sz3/src/huff.rs:
crates/pedal-sz3/src/interp_nd.rs:
crates/pedal-sz3/src/metrics.rs:
crates/pedal-sz3/src/predictor.rs:
crates/pedal-sz3/src/quantizer.rs:
crates/pedal-sz3/src/select.rs:
crates/pedal-sz3/src/varint.rs:
