/root/repo/target/debug/deps/fuzz_sweep-7ae5bd3a98d34acc.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_sweep-7ae5bd3a98d34acc.rmeta: crates/pedal-testkit/src/bin/fuzz_sweep.rs Cargo.toml

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
