/root/repo/target/debug/deps/pedal_par-b20882c007490707.d: crates/pedal-par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_par-b20882c007490707.rmeta: crates/pedal-par/src/lib.rs Cargo.toml

crates/pedal-par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
