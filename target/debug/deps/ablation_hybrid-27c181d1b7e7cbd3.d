/root/repo/target/debug/deps/ablation_hybrid-27c181d1b7e7cbd3.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-27c181d1b7e7cbd3: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
