/root/repo/target/debug/deps/pedal_service-91f89bfd67bfadb5.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-91f89bfd67bfadb5.rlib: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-91f89bfd67bfadb5.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
