/root/repo/target/debug/deps/quickstart-c31e4ce6306f23c8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-c31e4ce6306f23c8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
