/root/repo/target/debug/deps/fig10_p2p_latency-9bdcb9a028bec493.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-9bdcb9a028bec493: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
