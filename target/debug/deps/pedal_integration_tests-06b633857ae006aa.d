/root/repo/target/debug/deps/pedal_integration_tests-06b633857ae006aa.d: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-06b633857ae006aa.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-06b633857ae006aa.rmeta: tests/src/lib.rs

tests/src/lib.rs:
