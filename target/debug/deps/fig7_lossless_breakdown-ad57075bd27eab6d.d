/root/repo/target/debug/deps/fig7_lossless_breakdown-ad57075bd27eab6d.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-ad57075bd27eab6d: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
