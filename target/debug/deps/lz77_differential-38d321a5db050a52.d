/root/repo/target/debug/deps/lz77_differential-38d321a5db050a52.d: tests/tests/lz77_differential.rs

/root/repo/target/debug/deps/lz77_differential-38d321a5db050a52: tests/tests/lz77_differential.rs

tests/tests/lz77_differential.rs:
