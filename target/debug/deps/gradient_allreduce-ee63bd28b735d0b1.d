/root/repo/target/debug/deps/gradient_allreduce-ee63bd28b735d0b1.d: examples/gradient_allreduce.rs Cargo.toml

/root/repo/target/debug/deps/libgradient_allreduce-ee63bd28b735d0b1.rmeta: examples/gradient_allreduce.rs Cargo.toml

examples/gradient_allreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
