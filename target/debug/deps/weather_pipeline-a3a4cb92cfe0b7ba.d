/root/repo/target/debug/deps/weather_pipeline-a3a4cb92cfe0b7ba.d: examples/weather_pipeline.rs

/root/repo/target/debug/deps/weather_pipeline-a3a4cb92cfe0b7ba: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
