/root/repo/target/debug/deps/codesign_tests-02141701748d4dc8.d: crates/pedal-codesign/tests/codesign_tests.rs

/root/repo/target/debug/deps/codesign_tests-02141701748d4dc8: crates/pedal-codesign/tests/codesign_tests.rs

crates/pedal-codesign/tests/codesign_tests.rs:
