/root/repo/target/debug/deps/proptest_doca-01d63908baaf8275.d: crates/pedal-doca/tests/proptest_doca.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_doca-01d63908baaf8275.rmeta: crates/pedal-doca/tests/proptest_doca.rs Cargo.toml

crates/pedal-doca/tests/proptest_doca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
