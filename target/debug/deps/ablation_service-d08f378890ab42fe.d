/root/repo/target/debug/deps/ablation_service-d08f378890ab42fe.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-d08f378890ab42fe: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
