/root/repo/target/debug/deps/pedal_codesign-eaff44f3e0777c33.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/libpedal_codesign-eaff44f3e0777c33.rlib: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/libpedal_codesign-eaff44f3e0777c33.rmeta: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
