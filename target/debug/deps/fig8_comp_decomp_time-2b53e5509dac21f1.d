/root/repo/target/debug/deps/fig8_comp_decomp_time-2b53e5509dac21f1.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-2b53e5509dac21f1: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
