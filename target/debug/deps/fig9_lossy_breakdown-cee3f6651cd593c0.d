/root/repo/target/debug/deps/fig9_lossy_breakdown-cee3f6651cd593c0.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-cee3f6651cd593c0: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
