/root/repo/target/debug/deps/extensions-23f725888856c088.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-23f725888856c088: tests/tests/extensions.rs

tests/tests/extensions.rs:
