/root/repo/target/debug/deps/halo_exchange-0d9c1154e3e4ee00.d: examples/halo_exchange.rs Cargo.toml

/root/repo/target/debug/deps/libhalo_exchange-0d9c1154e3e4ee00.rmeta: examples/halo_exchange.rs Cargo.toml

examples/halo_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
