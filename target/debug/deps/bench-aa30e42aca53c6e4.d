/root/repo/target/debug/deps/bench-aa30e42aca53c6e4.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-aa30e42aca53c6e4.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-aa30e42aca53c6e4.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
