/root/repo/target/debug/deps/proptest_pedal-3ef55755bd8be8dc.d: crates/pedal/tests/proptest_pedal.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_pedal-3ef55755bd8be8dc.rmeta: crates/pedal/tests/proptest_pedal.rs Cargo.toml

crates/pedal/tests/proptest_pedal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
