/root/repo/target/debug/deps/file_compressor-16f39cab5277b268.d: examples/file_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libfile_compressor-16f39cab5277b268.rmeta: examples/file_compressor.rs Cargo.toml

examples/file_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
