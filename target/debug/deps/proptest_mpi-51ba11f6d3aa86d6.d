/root/repo/target/debug/deps/proptest_mpi-51ba11f6d3aa86d6.d: crates/pedal-mpi/tests/proptest_mpi.rs

/root/repo/target/debug/deps/proptest_mpi-51ba11f6d3aa86d6: crates/pedal-mpi/tests/proptest_mpi.rs

crates/pedal-mpi/tests/proptest_mpi.rs:
