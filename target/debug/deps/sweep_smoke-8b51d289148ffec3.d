/root/repo/target/debug/deps/sweep_smoke-8b51d289148ffec3.d: crates/pedal-testkit/tests/sweep_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_smoke-8b51d289148ffec3.rmeta: crates/pedal-testkit/tests/sweep_smoke.rs Cargo.toml

crates/pedal-testkit/tests/sweep_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
