/root/repo/target/debug/deps/table5_ratios-0ab030a65fcb3657.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-0ab030a65fcb3657: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
