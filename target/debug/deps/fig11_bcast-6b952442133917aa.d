/root/repo/target/debug/deps/fig11_bcast-6b952442133917aa.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-6b952442133917aa: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
