/root/repo/target/debug/deps/bench-3ef98111dee36467.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-3ef98111dee36467: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
