/root/repo/target/debug/deps/ablation_sz3_backend-f1195d6cdd54ec6d.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-f1195d6cdd54ec6d: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
