/root/repo/target/debug/deps/halo_exchange-700f9a54b6141dfa.d: examples/halo_exchange.rs

/root/repo/target/debug/deps/halo_exchange-700f9a54b6141dfa: examples/halo_exchange.rs

examples/halo_exchange.rs:
