/root/repo/target/debug/deps/ablation_sz3_backend-dc14ed416b263c31.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-dc14ed416b263c31: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
