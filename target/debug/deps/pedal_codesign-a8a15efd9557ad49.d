/root/repo/target/debug/deps/pedal_codesign-a8a15efd9557ad49.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/libpedal_codesign-a8a15efd9557ad49.rlib: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/libpedal_codesign-a8a15efd9557ad49.rmeta: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
