/root/repo/target/debug/deps/fig8_comp_decomp_time-36fcccaed2a754b4.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-36fcccaed2a754b4: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
