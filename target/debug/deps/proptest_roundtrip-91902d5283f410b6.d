/root/repo/target/debug/deps/proptest_roundtrip-91902d5283f410b6.d: crates/pedal-deflate/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-91902d5283f410b6: crates/pedal-deflate/tests/proptest_roundtrip.rs

crates/pedal-deflate/tests/proptest_roundtrip.rs:
