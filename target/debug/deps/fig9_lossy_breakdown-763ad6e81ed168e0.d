/root/repo/target/debug/deps/fig9_lossy_breakdown-763ad6e81ed168e0.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-763ad6e81ed168e0: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
