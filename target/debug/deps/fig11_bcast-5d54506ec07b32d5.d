/root/repo/target/debug/deps/fig11_bcast-5d54506ec07b32d5.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-5d54506ec07b32d5: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
