/root/repo/target/debug/deps/file_compressor-db6facafc67a41c0.d: examples/file_compressor.rs Cargo.toml

/root/repo/target/debug/deps/libfile_compressor-db6facafc67a41c0.rmeta: examples/file_compressor.rs Cargo.toml

examples/file_compressor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
