/root/repo/target/debug/deps/tables_1_2_3-b431fcb981fb9e7c.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-b431fcb981fb9e7c: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
