/root/repo/target/debug/deps/proptest_doca-0cafa363ef7bc6f2.d: crates/pedal-doca/tests/proptest_doca.rs

/root/repo/target/debug/deps/proptest_doca-0cafa363ef7bc6f2: crates/pedal-doca/tests/proptest_doca.rs

crates/pedal-doca/tests/proptest_doca.rs:
