/root/repo/target/debug/deps/ablation_service-e4d6b999b6a88b0d.d: crates/bench/src/bin/ablation_service.rs Cargo.toml

/root/repo/target/debug/deps/libablation_service-e4d6b999b6a88b0d.rmeta: crates/bench/src/bin/ablation_service.rs Cargo.toml

crates/bench/src/bin/ablation_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
