/root/repo/target/debug/deps/ablation_pool-24287e31acb96cb2.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-24287e31acb96cb2: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
