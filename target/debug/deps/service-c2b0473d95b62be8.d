/root/repo/target/debug/deps/service-c2b0473d95b62be8.d: crates/pedal-service/tests/service.rs

/root/repo/target/debug/deps/service-c2b0473d95b62be8: crates/pedal-service/tests/service.rs

crates/pedal-service/tests/service.rs:
