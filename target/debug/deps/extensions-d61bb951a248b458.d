/root/repo/target/debug/deps/extensions-d61bb951a248b458.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-d61bb951a248b458: tests/tests/extensions.rs

tests/tests/extensions.rs:
