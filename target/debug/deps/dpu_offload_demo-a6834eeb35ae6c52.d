/root/repo/target/debug/deps/dpu_offload_demo-a6834eeb35ae6c52.d: examples/dpu_offload_demo.rs

/root/repo/target/debug/deps/dpu_offload_demo-a6834eeb35ae6c52: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
