/root/repo/target/debug/deps/ablation_hybrid-389d59fd9ab0d964.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-389d59fd9ab0d964: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
