/root/repo/target/debug/deps/weather_pipeline-50b47ff244c29df8.d: examples/weather_pipeline.rs

/root/repo/target/debug/deps/weather_pipeline-50b47ff244c29df8: examples/weather_pipeline.rs

examples/weather_pipeline.rs:
