/root/repo/target/debug/deps/ablation_sz3_backend-b54797ef24405a14.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-b54797ef24405a14: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
