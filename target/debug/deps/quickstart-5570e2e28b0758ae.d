/root/repo/target/debug/deps/quickstart-5570e2e28b0758ae.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-5570e2e28b0758ae.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
