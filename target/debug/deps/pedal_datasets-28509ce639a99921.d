/root/repo/target/debug/deps/pedal_datasets-28509ce639a99921.d: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

/root/repo/target/debug/deps/pedal_datasets-28509ce639a99921: crates/pedal-datasets/src/lib.rs crates/pedal-datasets/src/generators.rs

crates/pedal-datasets/src/lib.rs:
crates/pedal-datasets/src/generators.rs:
