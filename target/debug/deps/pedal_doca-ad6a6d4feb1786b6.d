/root/repo/target/debug/deps/pedal_doca-ad6a6d4feb1786b6.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/debug/deps/pedal_doca-ad6a6d4feb1786b6: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
