/root/repo/target/debug/deps/ablation_host_offload-12eab8936e195cda.d: crates/bench/src/bin/ablation_host_offload.rs Cargo.toml

/root/repo/target/debug/deps/libablation_host_offload-12eab8936e195cda.rmeta: crates/bench/src/bin/ablation_host_offload.rs Cargo.toml

crates/bench/src/bin/ablation_host_offload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
