/root/repo/target/debug/deps/table5_ratios-6a9cdb761809bf7a.d: crates/bench/src/bin/table5_ratios.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_ratios-6a9cdb761809bf7a.rmeta: crates/bench/src/bin/table5_ratios.rs Cargo.toml

crates/bench/src/bin/table5_ratios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
