/root/repo/target/debug/deps/fig9_lossy_breakdown-b3f91615cd06ddb6.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-b3f91615cd06ddb6: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
