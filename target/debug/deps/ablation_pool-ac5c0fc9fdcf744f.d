/root/repo/target/debug/deps/ablation_pool-ac5c0fc9fdcf744f.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-ac5c0fc9fdcf744f: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
