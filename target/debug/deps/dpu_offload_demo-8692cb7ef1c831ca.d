/root/repo/target/debug/deps/dpu_offload_demo-8692cb7ef1c831ca.d: examples/dpu_offload_demo.rs

/root/repo/target/debug/deps/dpu_offload_demo-8692cb7ef1c831ca: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
