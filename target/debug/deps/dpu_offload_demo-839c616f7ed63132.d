/root/repo/target/debug/deps/dpu_offload_demo-839c616f7ed63132.d: examples/dpu_offload_demo.rs Cargo.toml

/root/repo/target/debug/deps/libdpu_offload_demo-839c616f7ed63132.rmeta: examples/dpu_offload_demo.rs Cargo.toml

examples/dpu_offload_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
