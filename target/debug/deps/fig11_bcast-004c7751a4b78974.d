/root/repo/target/debug/deps/fig11_bcast-004c7751a4b78974.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-004c7751a4b78974: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
