/root/repo/target/debug/deps/fig7_lossless_breakdown-7d21708c19d57eda.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-7d21708c19d57eda: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
