/root/repo/target/debug/deps/pedal_lz4-d8475e1a4e6dc49f.d: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

/root/repo/target/debug/deps/libpedal_lz4-d8475e1a4e6dc49f.rlib: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

/root/repo/target/debug/deps/libpedal_lz4-d8475e1a4e6dc49f.rmeta: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

crates/pedal-lz4/src/lib.rs:
crates/pedal-lz4/src/block.rs:
crates/pedal-lz4/src/frame.rs:
