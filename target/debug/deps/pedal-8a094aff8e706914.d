/root/repo/target/debug/deps/pedal-8a094aff8e706914.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/debug/deps/pedal-8a094aff8e706914: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
