/root/repo/target/debug/deps/fig8_comp_decomp_time-aff387e63f727dac.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-aff387e63f727dac: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
