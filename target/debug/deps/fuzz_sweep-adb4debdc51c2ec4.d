/root/repo/target/debug/deps/fuzz_sweep-adb4debdc51c2ec4.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-adb4debdc51c2ec4: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
