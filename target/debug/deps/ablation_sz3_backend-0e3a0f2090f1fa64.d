/root/repo/target/debug/deps/ablation_sz3_backend-0e3a0f2090f1fa64.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-0e3a0f2090f1fa64: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
