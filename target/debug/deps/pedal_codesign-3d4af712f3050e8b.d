/root/repo/target/debug/deps/pedal_codesign-3d4af712f3050e8b.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/pedal_codesign-3d4af712f3050e8b: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
