/root/repo/target/debug/deps/sweep_smoke-8c7d8baedb46dddd.d: crates/pedal-testkit/tests/sweep_smoke.rs

/root/repo/target/debug/deps/sweep_smoke-8c7d8baedb46dddd: crates/pedal-testkit/tests/sweep_smoke.rs

crates/pedal-testkit/tests/sweep_smoke.rs:
