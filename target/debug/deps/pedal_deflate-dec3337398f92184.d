/root/repo/target/debug/deps/pedal_deflate-dec3337398f92184.d: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_deflate-dec3337398f92184.rmeta: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs Cargo.toml

crates/pedal-deflate/src/lib.rs:
crates/pedal-deflate/src/bitio.rs:
crates/pedal-deflate/src/consts.rs:
crates/pedal-deflate/src/encoder.rs:
crates/pedal-deflate/src/huffman.rs:
crates/pedal-deflate/src/inflate.rs:
crates/pedal-deflate/src/lz77.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
