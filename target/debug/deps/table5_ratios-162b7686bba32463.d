/root/repo/target/debug/deps/table5_ratios-162b7686bba32463.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-162b7686bba32463: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
