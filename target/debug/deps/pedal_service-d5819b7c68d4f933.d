/root/repo/target/debug/deps/pedal_service-d5819b7c68d4f933.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/pedal_service-d5819b7c68d4f933: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
