/root/repo/target/debug/deps/pedal_integration_tests-5be6b65b9d10871d.d: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-5be6b65b9d10871d.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-5be6b65b9d10871d.rmeta: tests/src/lib.rs

tests/src/lib.rs:
