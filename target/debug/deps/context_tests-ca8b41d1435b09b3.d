/root/repo/target/debug/deps/context_tests-ca8b41d1435b09b3.d: crates/pedal/tests/context_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcontext_tests-ca8b41d1435b09b3.rmeta: crates/pedal/tests/context_tests.rs Cargo.toml

crates/pedal/tests/context_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
