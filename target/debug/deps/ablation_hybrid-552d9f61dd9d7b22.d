/root/repo/target/debug/deps/ablation_hybrid-552d9f61dd9d7b22.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-552d9f61dd9d7b22: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
