/root/repo/target/debug/deps/bench-0873e0b6f405339c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-0873e0b6f405339c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-0873e0b6f405339c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
