/root/repo/target/debug/deps/ablation_hybrid-5890d85e8bf1fa51.d: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hybrid-5890d85e8bf1fa51.rmeta: crates/bench/src/bin/ablation_hybrid.rs Cargo.toml

crates/bench/src/bin/ablation_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
