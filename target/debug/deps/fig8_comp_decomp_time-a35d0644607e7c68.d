/root/repo/target/debug/deps/fig8_comp_decomp_time-a35d0644607e7c68.d: crates/bench/src/bin/fig8_comp_decomp_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_comp_decomp_time-a35d0644607e7c68.rmeta: crates/bench/src/bin/fig8_comp_decomp_time.rs Cargo.toml

crates/bench/src/bin/fig8_comp_decomp_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
