/root/repo/target/debug/deps/proptest_mpi-0011ea2efd200aba.d: crates/pedal-mpi/tests/proptest_mpi.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_mpi-0011ea2efd200aba.rmeta: crates/pedal-mpi/tests/proptest_mpi.rs Cargo.toml

crates/pedal-mpi/tests/proptest_mpi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
