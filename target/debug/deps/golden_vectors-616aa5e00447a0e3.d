/root/repo/target/debug/deps/golden_vectors-616aa5e00447a0e3.d: crates/pedal-testkit/tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-616aa5e00447a0e3: crates/pedal-testkit/tests/golden_vectors.rs

crates/pedal-testkit/tests/golden_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
