/root/repo/target/debug/deps/paper_claims-3c7f07d3714267eb.d: tests/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-3c7f07d3714267eb: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
