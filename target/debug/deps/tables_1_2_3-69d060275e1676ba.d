/root/repo/target/debug/deps/tables_1_2_3-69d060275e1676ba.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-69d060275e1676ba: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
