/root/repo/target/debug/deps/gradient_allreduce-3484b2a53c201de7.d: examples/gradient_allreduce.rs Cargo.toml

/root/repo/target/debug/deps/libgradient_allreduce-3484b2a53c201de7.rmeta: examples/gradient_allreduce.rs Cargo.toml

examples/gradient_allreduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
