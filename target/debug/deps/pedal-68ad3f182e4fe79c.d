/root/repo/target/debug/deps/pedal-68ad3f182e4fe79c.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/debug/deps/libpedal-68ad3f182e4fe79c.rlib: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/debug/deps/libpedal-68ad3f182e4fe79c.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
