/root/repo/target/debug/deps/tables_1_2_3-528a44ea0a9a7dc1.d: crates/bench/src/bin/tables_1_2_3.rs Cargo.toml

/root/repo/target/debug/deps/libtables_1_2_3-528a44ea0a9a7dc1.rmeta: crates/bench/src/bin/tables_1_2_3.rs Cargo.toml

crates/bench/src/bin/tables_1_2_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
