/root/repo/target/debug/deps/ablation_service-2715e97c6f011bf7.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-2715e97c6f011bf7: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
