/root/repo/target/debug/deps/pedal_service-87bd4047f88f2868.d: crates/pedal-service/src/lib.rs

/root/repo/target/debug/deps/libpedal_service-87bd4047f88f2868.rlib: crates/pedal-service/src/lib.rs

/root/repo/target/debug/deps/libpedal_service-87bd4047f88f2868.rmeta: crates/pedal-service/src/lib.rs

crates/pedal-service/src/lib.rs:
