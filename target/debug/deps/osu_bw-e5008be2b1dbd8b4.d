/root/repo/target/debug/deps/osu_bw-e5008be2b1dbd8b4.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-e5008be2b1dbd8b4: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
