/root/repo/target/debug/deps/fig11_bcast-22a12653f24bd9ab.d: crates/bench/src/bin/fig11_bcast.rs

/root/repo/target/debug/deps/fig11_bcast-22a12653f24bd9ab: crates/bench/src/bin/fig11_bcast.rs

crates/bench/src/bin/fig11_bcast.rs:
