/root/repo/target/debug/deps/ablation_rndv-6be0f4163c6da0f5.d: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rndv-6be0f4163c6da0f5.rmeta: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

crates/bench/src/bin/ablation_rndv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
