/root/repo/target/debug/deps/pedal_codesign-acd8d70ee8922035.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

/root/repo/target/debug/deps/pedal_codesign-acd8d70ee8922035: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
