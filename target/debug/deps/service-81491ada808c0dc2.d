/root/repo/target/debug/deps/service-81491ada808c0dc2.d: crates/pedal-service/tests/service.rs Cargo.toml

/root/repo/target/debug/deps/libservice-81491ada808c0dc2.rmeta: crates/pedal-service/tests/service.rs Cargo.toml

crates/pedal-service/tests/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
