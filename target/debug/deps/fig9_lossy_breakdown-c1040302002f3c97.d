/root/repo/target/debug/deps/fig9_lossy_breakdown-c1040302002f3c97.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-c1040302002f3c97: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
