/root/repo/target/debug/deps/tables_1_2_3-d5e3ca77030bb434.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-d5e3ca77030bb434: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
