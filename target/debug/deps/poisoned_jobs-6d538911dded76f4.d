/root/repo/target/debug/deps/poisoned_jobs-6d538911dded76f4.d: crates/pedal-service/tests/poisoned_jobs.rs

/root/repo/target/debug/deps/poisoned_jobs-6d538911dded76f4: crates/pedal-service/tests/poisoned_jobs.rs

crates/pedal-service/tests/poisoned_jobs.rs:
