/root/repo/target/debug/deps/pedal_integration_tests-eb4c13f3c6c2edf1.d: tests/src/lib.rs

/root/repo/target/debug/deps/pedal_integration_tests-eb4c13f3c6c2edf1: tests/src/lib.rs

tests/src/lib.rs:
