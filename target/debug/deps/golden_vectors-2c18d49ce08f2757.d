/root/repo/target/debug/deps/golden_vectors-2c18d49ce08f2757.d: crates/pedal-testkit/tests/golden_vectors.rs

/root/repo/target/debug/deps/golden_vectors-2c18d49ce08f2757: crates/pedal-testkit/tests/golden_vectors.rs

crates/pedal-testkit/tests/golden_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
