/root/repo/target/debug/deps/ablation_sz3_backend-3d25ce18ab568430.d: crates/bench/src/bin/ablation_sz3_backend.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sz3_backend-3d25ce18ab568430.rmeta: crates/bench/src/bin/ablation_sz3_backend.rs Cargo.toml

crates/bench/src/bin/ablation_sz3_backend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
