/root/repo/target/debug/deps/mpi_pingpong-db0fc2cf4a208158.d: examples/mpi_pingpong.rs

/root/repo/target/debug/deps/mpi_pingpong-db0fc2cf4a208158: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
