/root/repo/target/debug/deps/ablation_sz3_backend-6dce9b2d97fb5735.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-6dce9b2d97fb5735: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
