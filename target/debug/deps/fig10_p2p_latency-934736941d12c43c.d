/root/repo/target/debug/deps/fig10_p2p_latency-934736941d12c43c.d: crates/bench/src/bin/fig10_p2p_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_p2p_latency-934736941d12c43c.rmeta: crates/bench/src/bin/fig10_p2p_latency.rs Cargo.toml

crates/bench/src/bin/fig10_p2p_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
