/root/repo/target/debug/deps/ablation_pool-9ad755ec99b9abc1.d: crates/bench/src/bin/ablation_pool.rs

/root/repo/target/debug/deps/ablation_pool-9ad755ec99b9abc1: crates/bench/src/bin/ablation_pool.rs

crates/bench/src/bin/ablation_pool.rs:
