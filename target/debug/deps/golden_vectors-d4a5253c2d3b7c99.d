/root/repo/target/debug/deps/golden_vectors-d4a5253c2d3b7c99.d: crates/pedal-testkit/tests/golden_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_vectors-d4a5253c2d3b7c99.rmeta: crates/pedal-testkit/tests/golden_vectors.rs Cargo.toml

crates/pedal-testkit/tests/golden_vectors.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
