/root/repo/target/debug/deps/pedal_integration_tests-fbe64e01d96421cb.d: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-fbe64e01d96421cb.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libpedal_integration_tests-fbe64e01d96421cb.rmeta: tests/src/lib.rs

tests/src/lib.rs:
