/root/repo/target/debug/deps/ablation_host_offload-ab909f386ecfb117.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-ab909f386ecfb117: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
