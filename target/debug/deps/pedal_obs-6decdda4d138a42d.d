/root/repo/target/debug/deps/pedal_obs-6decdda4d138a42d.d: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

/root/repo/target/debug/deps/pedal_obs-6decdda4d138a42d: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

crates/pedal-obs/src/lib.rs:
crates/pedal-obs/src/event.rs:
crates/pedal-obs/src/hist.rs:
crates/pedal-obs/src/json.rs:
crates/pedal-obs/src/registry.rs:
crates/pedal-obs/src/ring.rs:
crates/pedal-obs/src/trace.rs:
