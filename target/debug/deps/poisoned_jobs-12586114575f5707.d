/root/repo/target/debug/deps/poisoned_jobs-12586114575f5707.d: crates/pedal-service/tests/poisoned_jobs.rs

/root/repo/target/debug/deps/poisoned_jobs-12586114575f5707: crates/pedal-service/tests/poisoned_jobs.rs

crates/pedal-service/tests/poisoned_jobs.rs:
