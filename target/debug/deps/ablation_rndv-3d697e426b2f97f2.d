/root/repo/target/debug/deps/ablation_rndv-3d697e426b2f97f2.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-3d697e426b2f97f2: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
