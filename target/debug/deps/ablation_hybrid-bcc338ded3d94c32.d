/root/repo/target/debug/deps/ablation_hybrid-bcc338ded3d94c32.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-bcc338ded3d94c32: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
