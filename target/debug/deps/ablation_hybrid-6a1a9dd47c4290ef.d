/root/repo/target/debug/deps/ablation_hybrid-6a1a9dd47c4290ef.d: crates/bench/src/bin/ablation_hybrid.rs

/root/repo/target/debug/deps/ablation_hybrid-6a1a9dd47c4290ef: crates/bench/src/bin/ablation_hybrid.rs

crates/bench/src/bin/ablation_hybrid.rs:
