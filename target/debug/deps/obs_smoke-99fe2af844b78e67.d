/root/repo/target/debug/deps/obs_smoke-99fe2af844b78e67.d: crates/bench/src/bin/obs_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libobs_smoke-99fe2af844b78e67.rmeta: crates/bench/src/bin/obs_smoke.rs Cargo.toml

crates/bench/src/bin/obs_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
