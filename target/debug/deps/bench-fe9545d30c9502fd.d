/root/repo/target/debug/deps/bench-fe9545d30c9502fd.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/bench-fe9545d30c9502fd: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
