/root/repo/target/debug/deps/pedal_integration_tests-9eea144d55b29d6f.d: tests/src/lib.rs

/root/repo/target/debug/deps/pedal_integration_tests-9eea144d55b29d6f: tests/src/lib.rs

tests/src/lib.rs:
