/root/repo/target/debug/deps/bench-cd9c67cc402d064f.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-cd9c67cc402d064f.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libbench-cd9c67cc402d064f.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
