/root/repo/target/debug/deps/codesign_tests-684ae3685137866d.d: crates/pedal-codesign/tests/codesign_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcodesign_tests-684ae3685137866d.rmeta: crates/pedal-codesign/tests/codesign_tests.rs Cargo.toml

crates/pedal-codesign/tests/codesign_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
