/root/repo/target/debug/deps/proptest_doca-2cdbc5d0bbaa8685.d: crates/pedal-doca/tests/proptest_doca.rs

/root/repo/target/debug/deps/proptest_doca-2cdbc5d0bbaa8685: crates/pedal-doca/tests/proptest_doca.rs

crates/pedal-doca/tests/proptest_doca.rs:
