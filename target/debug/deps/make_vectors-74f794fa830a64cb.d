/root/repo/target/debug/deps/make_vectors-74f794fa830a64cb.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-74f794fa830a64cb: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
