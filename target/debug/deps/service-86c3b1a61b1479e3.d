/root/repo/target/debug/deps/service-86c3b1a61b1479e3.d: crates/pedal-service/tests/service.rs

/root/repo/target/debug/deps/service-86c3b1a61b1479e3: crates/pedal-service/tests/service.rs

crates/pedal-service/tests/service.rs:
