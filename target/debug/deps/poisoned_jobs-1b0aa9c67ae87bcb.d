/root/repo/target/debug/deps/poisoned_jobs-1b0aa9c67ae87bcb.d: crates/pedal-service/tests/poisoned_jobs.rs

/root/repo/target/debug/deps/poisoned_jobs-1b0aa9c67ae87bcb: crates/pedal-service/tests/poisoned_jobs.rs

crates/pedal-service/tests/poisoned_jobs.rs:
