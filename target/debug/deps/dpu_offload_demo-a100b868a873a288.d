/root/repo/target/debug/deps/dpu_offload_demo-a100b868a873a288.d: examples/dpu_offload_demo.rs

/root/repo/target/debug/deps/dpu_offload_demo-a100b868a873a288: examples/dpu_offload_demo.rs

examples/dpu_offload_demo.rs:
