/root/repo/target/debug/deps/rel_mode-30284f6b3a99ab1d.d: crates/pedal-sz3/tests/rel_mode.rs

/root/repo/target/debug/deps/rel_mode-30284f6b3a99ab1d: crates/pedal-sz3/tests/rel_mode.rs

crates/pedal-sz3/tests/rel_mode.rs:
