/root/repo/target/debug/deps/pedal_testkit-327ee204b8ae9b47.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-327ee204b8ae9b47.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-327ee204b8ae9b47.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
