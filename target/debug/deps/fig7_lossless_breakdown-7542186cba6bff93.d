/root/repo/target/debug/deps/fig7_lossless_breakdown-7542186cba6bff93.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-7542186cba6bff93: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
