/root/repo/target/debug/deps/fuzz_sweep-f946ac93515db084.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-f946ac93515db084: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
