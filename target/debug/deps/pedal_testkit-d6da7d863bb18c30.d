/root/repo/target/debug/deps/pedal_testkit-d6da7d863bb18c30.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/pedal_testkit-d6da7d863bb18c30: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
