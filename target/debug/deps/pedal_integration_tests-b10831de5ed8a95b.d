/root/repo/target/debug/deps/pedal_integration_tests-b10831de5ed8a95b.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_integration_tests-b10831de5ed8a95b.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
