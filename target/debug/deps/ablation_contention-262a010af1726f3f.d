/root/repo/target/debug/deps/ablation_contention-262a010af1726f3f.d: crates/bench/src/bin/ablation_contention.rs Cargo.toml

/root/repo/target/debug/deps/libablation_contention-262a010af1726f3f.rmeta: crates/bench/src/bin/ablation_contention.rs Cargo.toml

crates/bench/src/bin/ablation_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
