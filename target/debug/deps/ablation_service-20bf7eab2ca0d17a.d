/root/repo/target/debug/deps/ablation_service-20bf7eab2ca0d17a.d: crates/bench/src/bin/ablation_service.rs Cargo.toml

/root/repo/target/debug/deps/libablation_service-20bf7eab2ca0d17a.rmeta: crates/bench/src/bin/ablation_service.rs Cargo.toml

crates/bench/src/bin/ablation_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
