/root/repo/target/debug/deps/halo_exchange-9d5c26bc7da6afb9.d: examples/halo_exchange.rs

/root/repo/target/debug/deps/halo_exchange-9d5c26bc7da6afb9: examples/halo_exchange.rs

examples/halo_exchange.rs:
