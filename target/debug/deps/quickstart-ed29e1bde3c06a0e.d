/root/repo/target/debug/deps/quickstart-ed29e1bde3c06a0e.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-ed29e1bde3c06a0e: examples/quickstart.rs

examples/quickstart.rs:
