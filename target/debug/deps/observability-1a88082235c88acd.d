/root/repo/target/debug/deps/observability-1a88082235c88acd.d: crates/pedal-service/tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-1a88082235c88acd.rmeta: crates/pedal-service/tests/observability.rs Cargo.toml

crates/pedal-service/tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
