/root/repo/target/debug/deps/fig8_comp_decomp_time-eecbd84f1a67a209.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-eecbd84f1a67a209: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
