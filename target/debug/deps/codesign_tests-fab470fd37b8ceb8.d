/root/repo/target/debug/deps/codesign_tests-fab470fd37b8ceb8.d: crates/pedal-codesign/tests/codesign_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcodesign_tests-fab470fd37b8ceb8.rmeta: crates/pedal-codesign/tests/codesign_tests.rs Cargo.toml

crates/pedal-codesign/tests/codesign_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
