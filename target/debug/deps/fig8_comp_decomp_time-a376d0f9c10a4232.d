/root/repo/target/debug/deps/fig8_comp_decomp_time-a376d0f9c10a4232.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-a376d0f9c10a4232: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
