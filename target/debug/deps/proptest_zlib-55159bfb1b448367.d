/root/repo/target/debug/deps/proptest_zlib-55159bfb1b448367.d: crates/pedal-zlib/tests/proptest_zlib.rs

/root/repo/target/debug/deps/proptest_zlib-55159bfb1b448367: crates/pedal-zlib/tests/proptest_zlib.rs

crates/pedal-zlib/tests/proptest_zlib.rs:
