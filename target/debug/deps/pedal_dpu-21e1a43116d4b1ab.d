/root/repo/target/debug/deps/pedal_dpu-21e1a43116d4b1ab.d: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_dpu-21e1a43116d4b1ab.rmeta: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs Cargo.toml

crates/pedal-dpu/src/lib.rs:
crates/pedal-dpu/src/bytes.rs:
crates/pedal-dpu/src/clock.rs:
crates/pedal-dpu/src/costs.rs:
crates/pedal-dpu/src/platform.rs:
crates/pedal-dpu/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
