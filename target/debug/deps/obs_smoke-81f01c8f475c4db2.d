/root/repo/target/debug/deps/obs_smoke-81f01c8f475c4db2.d: crates/bench/src/bin/obs_smoke.rs

/root/repo/target/debug/deps/obs_smoke-81f01c8f475c4db2: crates/bench/src/bin/obs_smoke.rs

crates/bench/src/bin/obs_smoke.rs:
