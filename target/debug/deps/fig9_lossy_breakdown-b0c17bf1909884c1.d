/root/repo/target/debug/deps/fig9_lossy_breakdown-b0c17bf1909884c1.d: crates/bench/src/bin/fig9_lossy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_lossy_breakdown-b0c17bf1909884c1.rmeta: crates/bench/src/bin/fig9_lossy_breakdown.rs Cargo.toml

crates/bench/src/bin/fig9_lossy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
