/root/repo/target/debug/deps/ablation_rndv-81e4f288ceb6bedd.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-81e4f288ceb6bedd: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
