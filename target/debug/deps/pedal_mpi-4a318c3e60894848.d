/root/repo/target/debug/deps/pedal_mpi-4a318c3e60894848.d: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

/root/repo/target/debug/deps/pedal_mpi-4a318c3e60894848: crates/pedal-mpi/src/lib.rs crates/pedal-mpi/src/collectives.rs crates/pedal-mpi/src/comm.rs

crates/pedal-mpi/src/lib.rs:
crates/pedal-mpi/src/collectives.rs:
crates/pedal-mpi/src/comm.rs:
