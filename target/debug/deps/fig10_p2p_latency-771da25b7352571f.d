/root/repo/target/debug/deps/fig10_p2p_latency-771da25b7352571f.d: crates/bench/src/bin/fig10_p2p_latency.rs

/root/repo/target/debug/deps/fig10_p2p_latency-771da25b7352571f: crates/bench/src/bin/fig10_p2p_latency.rs

crates/bench/src/bin/fig10_p2p_latency.rs:
