/root/repo/target/debug/deps/halo_exchange-9b27fd9da7a601c3.d: examples/halo_exchange.rs

/root/repo/target/debug/deps/halo_exchange-9b27fd9da7a601c3: examples/halo_exchange.rs

examples/halo_exchange.rs:
