/root/repo/target/debug/deps/bench-871b46a6cc22b9e0.d: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libbench-871b46a6cc22b9e0.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
