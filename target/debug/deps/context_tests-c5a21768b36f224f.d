/root/repo/target/debug/deps/context_tests-c5a21768b36f224f.d: crates/pedal/tests/context_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcontext_tests-c5a21768b36f224f.rmeta: crates/pedal/tests/context_tests.rs Cargo.toml

crates/pedal/tests/context_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
