/root/repo/target/debug/deps/pedal_service-5be2ea167ee5d52b.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-5be2ea167ee5d52b.rlib: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-5be2ea167ee5d52b.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
