/root/repo/target/debug/deps/fuzz_sweep-2c47d52628a86cca.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-2c47d52628a86cca: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
