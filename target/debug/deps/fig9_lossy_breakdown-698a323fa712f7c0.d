/root/repo/target/debug/deps/fig9_lossy_breakdown-698a323fa712f7c0.d: crates/bench/src/bin/fig9_lossy_breakdown.rs

/root/repo/target/debug/deps/fig9_lossy_breakdown-698a323fa712f7c0: crates/bench/src/bin/fig9_lossy_breakdown.rs

crates/bench/src/bin/fig9_lossy_breakdown.rs:
