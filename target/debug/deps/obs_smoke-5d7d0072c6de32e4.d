/root/repo/target/debug/deps/obs_smoke-5d7d0072c6de32e4.d: crates/bench/src/bin/obs_smoke.rs

/root/repo/target/debug/deps/obs_smoke-5d7d0072c6de32e4: crates/bench/src/bin/obs_smoke.rs

crates/bench/src/bin/obs_smoke.rs:
