/root/repo/target/debug/deps/full_stack-52a070f3bd5b255b.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-52a070f3bd5b255b: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
