/root/repo/target/debug/deps/ablation_rndv-98664eaf6fbb8144.d: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rndv-98664eaf6fbb8144.rmeta: crates/bench/src/bin/ablation_rndv.rs Cargo.toml

crates/bench/src/bin/ablation_rndv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
