/root/repo/target/debug/deps/full_stack-cfacd014ff1f1009.d: tests/tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-cfacd014ff1f1009.rmeta: tests/tests/full_stack.rs Cargo.toml

tests/tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
