/root/repo/target/debug/deps/fig8_comp_decomp_time-3171d0b07846ba7b.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-3171d0b07846ba7b: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
