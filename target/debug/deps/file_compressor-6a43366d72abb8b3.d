/root/repo/target/debug/deps/file_compressor-6a43366d72abb8b3.d: examples/file_compressor.rs

/root/repo/target/debug/deps/file_compressor-6a43366d72abb8b3: examples/file_compressor.rs

examples/file_compressor.rs:
