/root/repo/target/debug/deps/make_vectors-d1cc27301f0963dd.d: crates/pedal-testkit/src/bin/make_vectors.rs Cargo.toml

/root/repo/target/debug/deps/libmake_vectors-d1cc27301f0963dd.rmeta: crates/pedal-testkit/src/bin/make_vectors.rs Cargo.toml

crates/pedal-testkit/src/bin/make_vectors.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
