/root/repo/target/debug/deps/poisoned_jobs-b21c96f8a689012d.d: crates/pedal-service/tests/poisoned_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libpoisoned_jobs-b21c96f8a689012d.rmeta: crates/pedal-service/tests/poisoned_jobs.rs Cargo.toml

crates/pedal-service/tests/poisoned_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
