/root/repo/target/debug/deps/paper_claims-c901f775406b6327.d: tests/tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-c901f775406b6327.rmeta: tests/tests/paper_claims.rs Cargo.toml

tests/tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
