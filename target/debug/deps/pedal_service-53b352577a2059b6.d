/root/repo/target/debug/deps/pedal_service-53b352577a2059b6.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-53b352577a2059b6.rlib: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/libpedal_service-53b352577a2059b6.rmeta: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
