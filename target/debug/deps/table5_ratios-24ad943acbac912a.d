/root/repo/target/debug/deps/table5_ratios-24ad943acbac912a.d: crates/bench/src/bin/table5_ratios.rs

/root/repo/target/debug/deps/table5_ratios-24ad943acbac912a: crates/bench/src/bin/table5_ratios.rs

crates/bench/src/bin/table5_ratios.rs:
