/root/repo/target/debug/deps/extensions-5ed631b904abc4c6.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-5ed631b904abc4c6.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
