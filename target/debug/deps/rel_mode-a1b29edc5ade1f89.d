/root/repo/target/debug/deps/rel_mode-a1b29edc5ade1f89.d: crates/pedal-sz3/tests/rel_mode.rs Cargo.toml

/root/repo/target/debug/deps/librel_mode-a1b29edc5ade1f89.rmeta: crates/pedal-sz3/tests/rel_mode.rs Cargo.toml

crates/pedal-sz3/tests/rel_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
