/root/repo/target/debug/deps/proptest_roundtrip-5f7be09c0ac695a2.d: crates/pedal-lz4/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-5f7be09c0ac695a2: crates/pedal-lz4/tests/proptest_roundtrip.rs

crates/pedal-lz4/tests/proptest_roundtrip.rs:
