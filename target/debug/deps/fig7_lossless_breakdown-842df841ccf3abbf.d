/root/repo/target/debug/deps/fig7_lossless_breakdown-842df841ccf3abbf.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-842df841ccf3abbf: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
