/root/repo/target/debug/deps/pedal_doca-c9bb363ce5ab1c4d.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_doca-c9bb363ce5ab1c4d.rmeta: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs Cargo.toml

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
