/root/repo/target/debug/deps/pedal_dpu-bbdff322f15f3cc6.d: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

/root/repo/target/debug/deps/libpedal_dpu-bbdff322f15f3cc6.rlib: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

/root/repo/target/debug/deps/libpedal_dpu-bbdff322f15f3cc6.rmeta: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

crates/pedal-dpu/src/lib.rs:
crates/pedal-dpu/src/bytes.rs:
crates/pedal-dpu/src/clock.rs:
crates/pedal-dpu/src/costs.rs:
crates/pedal-dpu/src/platform.rs:
crates/pedal-dpu/src/rng.rs:
