/root/repo/target/debug/deps/pedal_lz4-35a5079299cdfd98.d: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

/root/repo/target/debug/deps/pedal_lz4-35a5079299cdfd98: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs

crates/pedal-lz4/src/lib.rs:
crates/pedal-lz4/src/block.rs:
crates/pedal-lz4/src/frame.rs:
