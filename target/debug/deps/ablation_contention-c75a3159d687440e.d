/root/repo/target/debug/deps/ablation_contention-c75a3159d687440e.d: crates/bench/src/bin/ablation_contention.rs Cargo.toml

/root/repo/target/debug/deps/libablation_contention-c75a3159d687440e.rmeta: crates/bench/src/bin/ablation_contention.rs Cargo.toml

crates/bench/src/bin/ablation_contention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
