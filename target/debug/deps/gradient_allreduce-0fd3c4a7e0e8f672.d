/root/repo/target/debug/deps/gradient_allreduce-0fd3c4a7e0e8f672.d: examples/gradient_allreduce.rs

/root/repo/target/debug/deps/gradient_allreduce-0fd3c4a7e0e8f672: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
