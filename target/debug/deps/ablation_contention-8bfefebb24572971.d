/root/repo/target/debug/deps/ablation_contention-8bfefebb24572971.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-8bfefebb24572971: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
