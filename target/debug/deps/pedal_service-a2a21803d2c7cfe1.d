/root/repo/target/debug/deps/pedal_service-a2a21803d2c7cfe1.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/pedal_service-a2a21803d2c7cfe1: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
