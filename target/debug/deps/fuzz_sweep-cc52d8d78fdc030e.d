/root/repo/target/debug/deps/fuzz_sweep-cc52d8d78fdc030e.d: crates/pedal-testkit/src/bin/fuzz_sweep.rs

/root/repo/target/debug/deps/fuzz_sweep-cc52d8d78fdc030e: crates/pedal-testkit/src/bin/fuzz_sweep.rs

crates/pedal-testkit/src/bin/fuzz_sweep.rs:
