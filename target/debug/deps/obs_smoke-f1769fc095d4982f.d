/root/repo/target/debug/deps/obs_smoke-f1769fc095d4982f.d: crates/bench/src/bin/obs_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libobs_smoke-f1769fc095d4982f.rmeta: crates/bench/src/bin/obs_smoke.rs Cargo.toml

crates/bench/src/bin/obs_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
