/root/repo/target/debug/deps/pedal_doca-da813058eadfd8c9.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/debug/deps/libpedal_doca-da813058eadfd8c9.rlib: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/debug/deps/libpedal_doca-da813058eadfd8c9.rmeta: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
