/root/repo/target/debug/deps/pedal_service-1cb52186a10a2cd7.d: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

/root/repo/target/debug/deps/pedal_service-1cb52186a10a2cd7: crates/pedal-service/src/lib.rs crates/pedal-service/src/job.rs crates/pedal-service/src/queue.rs crates/pedal-service/src/service.rs crates/pedal-service/src/stats.rs

crates/pedal-service/src/lib.rs:
crates/pedal-service/src/job.rs:
crates/pedal-service/src/queue.rs:
crates/pedal-service/src/service.rs:
crates/pedal-service/src/stats.rs:
