/root/repo/target/debug/deps/bench-7d2daa224f55eb33.d: crates/bench/src/lib.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/bench-7d2daa224f55eb33: crates/bench/src/lib.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
