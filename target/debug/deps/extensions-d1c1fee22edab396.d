/root/repo/target/debug/deps/extensions-d1c1fee22edab396.d: tests/tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-d1c1fee22edab396.rmeta: tests/tests/extensions.rs Cargo.toml

tests/tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
