/root/repo/target/debug/deps/make_vectors-094cd7855f6edc8f.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-094cd7855f6edc8f: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
