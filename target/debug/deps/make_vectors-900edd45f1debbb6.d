/root/repo/target/debug/deps/make_vectors-900edd45f1debbb6.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-900edd45f1debbb6: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
