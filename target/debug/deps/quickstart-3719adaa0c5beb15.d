/root/repo/target/debug/deps/quickstart-3719adaa0c5beb15.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-3719adaa0c5beb15: examples/quickstart.rs

examples/quickstart.rs:
