/root/repo/target/debug/deps/pedal-65c2210db48f6137.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/debug/deps/libpedal-65c2210db48f6137.rlib: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

/root/repo/target/debug/deps/libpedal-65c2210db48f6137.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
