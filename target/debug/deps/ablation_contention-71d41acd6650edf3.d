/root/repo/target/debug/deps/ablation_contention-71d41acd6650edf3.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-71d41acd6650edf3: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
