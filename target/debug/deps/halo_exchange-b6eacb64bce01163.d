/root/repo/target/debug/deps/halo_exchange-b6eacb64bce01163.d: examples/halo_exchange.rs

/root/repo/target/debug/deps/halo_exchange-b6eacb64bce01163: examples/halo_exchange.rs

examples/halo_exchange.rs:
