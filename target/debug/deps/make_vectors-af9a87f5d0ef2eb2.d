/root/repo/target/debug/deps/make_vectors-af9a87f5d0ef2eb2.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-af9a87f5d0ef2eb2: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
