/root/repo/target/debug/deps/ablation_par-10b984ed1dea00ee.d: crates/bench/src/bin/ablation_par.rs Cargo.toml

/root/repo/target/debug/deps/libablation_par-10b984ed1dea00ee.rmeta: crates/bench/src/bin/ablation_par.rs Cargo.toml

crates/bench/src/bin/ablation_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
