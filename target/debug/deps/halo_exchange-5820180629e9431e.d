/root/repo/target/debug/deps/halo_exchange-5820180629e9431e.d: examples/halo_exchange.rs Cargo.toml

/root/repo/target/debug/deps/libhalo_exchange-5820180629e9431e.rmeta: examples/halo_exchange.rs Cargo.toml

examples/halo_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
