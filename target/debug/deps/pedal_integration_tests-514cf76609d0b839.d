/root/repo/target/debug/deps/pedal_integration_tests-514cf76609d0b839.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_integration_tests-514cf76609d0b839.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
