/root/repo/target/debug/deps/fig8_comp_decomp_time-344db6ca473ccb0d.d: crates/bench/src/bin/fig8_comp_decomp_time.rs

/root/repo/target/debug/deps/fig8_comp_decomp_time-344db6ca473ccb0d: crates/bench/src/bin/fig8_comp_decomp_time.rs

crates/bench/src/bin/fig8_comp_decomp_time.rs:
