/root/repo/target/debug/deps/mpi_pingpong-47ec7b56268109f5.d: examples/mpi_pingpong.rs

/root/repo/target/debug/deps/mpi_pingpong-47ec7b56268109f5: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
