/root/repo/target/debug/deps/pedal_zlib-d4d7c67b2c48ccdc.d: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

/root/repo/target/debug/deps/pedal_zlib-d4d7c67b2c48ccdc: crates/pedal-zlib/src/lib.rs crates/pedal-zlib/src/adler.rs crates/pedal-zlib/src/crc32.rs crates/pedal-zlib/src/gzip.rs

crates/pedal-zlib/src/lib.rs:
crates/pedal-zlib/src/adler.rs:
crates/pedal-zlib/src/crc32.rs:
crates/pedal-zlib/src/gzip.rs:
