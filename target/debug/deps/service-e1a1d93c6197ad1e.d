/root/repo/target/debug/deps/service-e1a1d93c6197ad1e.d: crates/pedal-service/tests/service.rs Cargo.toml

/root/repo/target/debug/deps/libservice-e1a1d93c6197ad1e.rmeta: crates/pedal-service/tests/service.rs Cargo.toml

crates/pedal-service/tests/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
