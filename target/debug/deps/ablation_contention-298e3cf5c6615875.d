/root/repo/target/debug/deps/ablation_contention-298e3cf5c6615875.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-298e3cf5c6615875: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
