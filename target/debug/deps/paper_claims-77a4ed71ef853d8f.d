/root/repo/target/debug/deps/paper_claims-77a4ed71ef853d8f.d: tests/tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-77a4ed71ef853d8f: tests/tests/paper_claims.rs

tests/tests/paper_claims.rs:
