/root/repo/target/debug/deps/fig7_lossless_breakdown-17a2dfcb232170e2.d: crates/bench/src/bin/fig7_lossless_breakdown.rs

/root/repo/target/debug/deps/fig7_lossless_breakdown-17a2dfcb232170e2: crates/bench/src/bin/fig7_lossless_breakdown.rs

crates/bench/src/bin/fig7_lossless_breakdown.rs:
