/root/repo/target/debug/deps/pedal_doca-a42e4ffbdf3160d6.d: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

/root/repo/target/debug/deps/pedal_doca-a42e4ffbdf3160d6: crates/pedal-doca/src/lib.rs crates/pedal-doca/src/device.rs crates/pedal-doca/src/engine.rs crates/pedal-doca/src/memmap.rs crates/pedal-doca/src/workq.rs

crates/pedal-doca/src/lib.rs:
crates/pedal-doca/src/device.rs:
crates/pedal-doca/src/engine.rs:
crates/pedal-doca/src/memmap.rs:
crates/pedal-doca/src/workq.rs:
