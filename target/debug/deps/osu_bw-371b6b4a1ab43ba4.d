/root/repo/target/debug/deps/osu_bw-371b6b4a1ab43ba4.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-371b6b4a1ab43ba4: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
