/root/repo/target/debug/deps/full_stack-20e8585478f3ff96.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-20e8585478f3ff96: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
