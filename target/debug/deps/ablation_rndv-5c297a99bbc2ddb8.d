/root/repo/target/debug/deps/ablation_rndv-5c297a99bbc2ddb8.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-5c297a99bbc2ddb8: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
