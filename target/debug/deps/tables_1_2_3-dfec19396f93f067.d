/root/repo/target/debug/deps/tables_1_2_3-dfec19396f93f067.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-dfec19396f93f067: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
