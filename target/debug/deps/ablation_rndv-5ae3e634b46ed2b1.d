/root/repo/target/debug/deps/ablation_rndv-5ae3e634b46ed2b1.d: crates/bench/src/bin/ablation_rndv.rs

/root/repo/target/debug/deps/ablation_rndv-5ae3e634b46ed2b1: crates/bench/src/bin/ablation_rndv.rs

crates/bench/src/bin/ablation_rndv.rs:
