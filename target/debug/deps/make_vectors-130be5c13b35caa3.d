/root/repo/target/debug/deps/make_vectors-130be5c13b35caa3.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-130be5c13b35caa3: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
