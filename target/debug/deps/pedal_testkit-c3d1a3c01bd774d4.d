/root/repo/target/debug/deps/pedal_testkit-c3d1a3c01bd774d4.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-c3d1a3c01bd774d4.rlib: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/libpedal_testkit-c3d1a3c01bd774d4.rmeta: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
