/root/repo/target/debug/deps/fig9_lossy_breakdown-aaf076a4e9797bcc.d: crates/bench/src/bin/fig9_lossy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_lossy_breakdown-aaf076a4e9797bcc.rmeta: crates/bench/src/bin/fig9_lossy_breakdown.rs Cargo.toml

crates/bench/src/bin/fig9_lossy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
