/root/repo/target/debug/deps/proptest_hostile-a5efcbd85c8afbc2.d: crates/pedal-sz3/tests/proptest_hostile.rs

/root/repo/target/debug/deps/proptest_hostile-a5efcbd85c8afbc2: crates/pedal-sz3/tests/proptest_hostile.rs

crates/pedal-sz3/tests/proptest_hostile.rs:
