/root/repo/target/debug/deps/ablation_host_offload-33ec3daf7c823aa6.d: crates/bench/src/bin/ablation_host_offload.rs

/root/repo/target/debug/deps/ablation_host_offload-33ec3daf7c823aa6: crates/bench/src/bin/ablation_host_offload.rs

crates/bench/src/bin/ablation_host_offload.rs:
