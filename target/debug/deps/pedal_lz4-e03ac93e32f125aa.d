/root/repo/target/debug/deps/pedal_lz4-e03ac93e32f125aa.d: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_lz4-e03ac93e32f125aa.rmeta: crates/pedal-lz4/src/lib.rs crates/pedal-lz4/src/block.rs crates/pedal-lz4/src/frame.rs Cargo.toml

crates/pedal-lz4/src/lib.rs:
crates/pedal-lz4/src/block.rs:
crates/pedal-lz4/src/frame.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
