/root/repo/target/debug/deps/pedal-695b92a06f3c419e.d: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libpedal-695b92a06f3c419e.rmeta: crates/pedal/src/lib.rs crates/pedal/src/context.rs crates/pedal/src/design.rs crates/pedal/src/header.rs crates/pedal/src/parallel.rs crates/pedal/src/pool.rs crates/pedal/src/timing.rs crates/pedal/src/wire.rs Cargo.toml

crates/pedal/src/lib.rs:
crates/pedal/src/context.rs:
crates/pedal/src/design.rs:
crates/pedal/src/header.rs:
crates/pedal/src/parallel.rs:
crates/pedal/src/pool.rs:
crates/pedal/src/timing.rs:
crates/pedal/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
