/root/repo/target/debug/deps/poisoned_jobs-4059ec50285e43fe.d: crates/pedal-service/tests/poisoned_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libpoisoned_jobs-4059ec50285e43fe.rmeta: crates/pedal-service/tests/poisoned_jobs.rs Cargo.toml

crates/pedal-service/tests/poisoned_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
