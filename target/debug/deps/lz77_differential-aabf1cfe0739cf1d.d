/root/repo/target/debug/deps/lz77_differential-aabf1cfe0739cf1d.d: tests/tests/lz77_differential.rs Cargo.toml

/root/repo/target/debug/deps/liblz77_differential-aabf1cfe0739cf1d.rmeta: tests/tests/lz77_differential.rs Cargo.toml

tests/tests/lz77_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
