/root/repo/target/debug/deps/proptest_error_bound-d2801548e64a7ee1.d: crates/pedal-sz3/tests/proptest_error_bound.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_error_bound-d2801548e64a7ee1.rmeta: crates/pedal-sz3/tests/proptest_error_bound.rs Cargo.toml

crates/pedal-sz3/tests/proptest_error_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
