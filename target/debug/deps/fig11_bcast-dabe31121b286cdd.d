/root/repo/target/debug/deps/fig11_bcast-dabe31121b286cdd.d: crates/bench/src/bin/fig11_bcast.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_bcast-dabe31121b286cdd.rmeta: crates/bench/src/bin/fig11_bcast.rs Cargo.toml

crates/bench/src/bin/fig11_bcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
