/root/repo/target/debug/deps/par_determinism-5d5d727fe7eba569.d: crates/bench/src/bin/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-5d5d727fe7eba569: crates/bench/src/bin/par_determinism.rs

crates/bench/src/bin/par_determinism.rs:
