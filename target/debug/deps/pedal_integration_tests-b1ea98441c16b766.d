/root/repo/target/debug/deps/pedal_integration_tests-b1ea98441c16b766.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_integration_tests-b1ea98441c16b766.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
