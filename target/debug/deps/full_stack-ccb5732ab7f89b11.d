/root/repo/target/debug/deps/full_stack-ccb5732ab7f89b11.d: tests/tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-ccb5732ab7f89b11: tests/tests/full_stack.rs

tests/tests/full_stack.rs:
