/root/repo/target/debug/deps/proptest_roundtrip-ceb39495971b640c.d: crates/pedal-deflate/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-ceb39495971b640c.rmeta: crates/pedal-deflate/tests/proptest_roundtrip.rs Cargo.toml

crates/pedal-deflate/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
