/root/repo/target/debug/deps/bench-24941d9d9315703d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-24941d9d9315703d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-24941d9d9315703d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
