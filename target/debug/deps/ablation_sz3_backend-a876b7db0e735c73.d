/root/repo/target/debug/deps/ablation_sz3_backend-a876b7db0e735c73.d: crates/bench/src/bin/ablation_sz3_backend.rs

/root/repo/target/debug/deps/ablation_sz3_backend-a876b7db0e735c73: crates/bench/src/bin/ablation_sz3_backend.rs

crates/bench/src/bin/ablation_sz3_backend.rs:
