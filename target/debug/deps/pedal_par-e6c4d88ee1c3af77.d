/root/repo/target/debug/deps/pedal_par-e6c4d88ee1c3af77.d: crates/pedal-par/src/lib.rs

/root/repo/target/debug/deps/pedal_par-e6c4d88ee1c3af77: crates/pedal-par/src/lib.rs

crates/pedal-par/src/lib.rs:
