/root/repo/target/debug/deps/pedal_sz3-6535f51edae9b29f.d: crates/pedal-sz3/src/lib.rs crates/pedal-sz3/src/backend.rs crates/pedal-sz3/src/compressor.rs crates/pedal-sz3/src/field.rs crates/pedal-sz3/src/huff.rs crates/pedal-sz3/src/interp_nd.rs crates/pedal-sz3/src/metrics.rs crates/pedal-sz3/src/predictor.rs crates/pedal-sz3/src/quantizer.rs crates/pedal-sz3/src/select.rs crates/pedal-sz3/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_sz3-6535f51edae9b29f.rmeta: crates/pedal-sz3/src/lib.rs crates/pedal-sz3/src/backend.rs crates/pedal-sz3/src/compressor.rs crates/pedal-sz3/src/field.rs crates/pedal-sz3/src/huff.rs crates/pedal-sz3/src/interp_nd.rs crates/pedal-sz3/src/metrics.rs crates/pedal-sz3/src/predictor.rs crates/pedal-sz3/src/quantizer.rs crates/pedal-sz3/src/select.rs crates/pedal-sz3/src/varint.rs Cargo.toml

crates/pedal-sz3/src/lib.rs:
crates/pedal-sz3/src/backend.rs:
crates/pedal-sz3/src/compressor.rs:
crates/pedal-sz3/src/field.rs:
crates/pedal-sz3/src/huff.rs:
crates/pedal-sz3/src/interp_nd.rs:
crates/pedal-sz3/src/metrics.rs:
crates/pedal-sz3/src/predictor.rs:
crates/pedal-sz3/src/quantizer.rs:
crates/pedal-sz3/src/select.rs:
crates/pedal-sz3/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
