/root/repo/target/debug/deps/pedal_testkit-349d31f9d4e9c8df.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/pedal_testkit-349d31f9d4e9c8df: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
