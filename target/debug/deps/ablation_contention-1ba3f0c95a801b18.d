/root/repo/target/debug/deps/ablation_contention-1ba3f0c95a801b18.d: crates/bench/src/bin/ablation_contention.rs

/root/repo/target/debug/deps/ablation_contention-1ba3f0c95a801b18: crates/bench/src/bin/ablation_contention.rs

crates/bench/src/bin/ablation_contention.rs:
