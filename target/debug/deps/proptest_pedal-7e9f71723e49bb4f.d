/root/repo/target/debug/deps/proptest_pedal-7e9f71723e49bb4f.d: crates/pedal/tests/proptest_pedal.rs

/root/repo/target/debug/deps/proptest_pedal-7e9f71723e49bb4f: crates/pedal/tests/proptest_pedal.rs

crates/pedal/tests/proptest_pedal.rs:
