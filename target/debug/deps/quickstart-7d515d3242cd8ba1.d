/root/repo/target/debug/deps/quickstart-7d515d3242cd8ba1.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-7d515d3242cd8ba1: examples/quickstart.rs

examples/quickstart.rs:
