/root/repo/target/debug/deps/obs_smoke-cf6595a811e53adb.d: crates/bench/src/bin/obs_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libobs_smoke-cf6595a811e53adb.rmeta: crates/bench/src/bin/obs_smoke.rs Cargo.toml

crates/bench/src/bin/obs_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
