/root/repo/target/debug/deps/weather_pipeline-474293719829b2ac.d: examples/weather_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libweather_pipeline-474293719829b2ac.rmeta: examples/weather_pipeline.rs Cargo.toml

examples/weather_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
