/root/repo/target/debug/deps/pedal_obs-676c98184d41681b.d: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_obs-676c98184d41681b.rmeta: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs Cargo.toml

crates/pedal-obs/src/lib.rs:
crates/pedal-obs/src/event.rs:
crates/pedal-obs/src/hist.rs:
crates/pedal-obs/src/json.rs:
crates/pedal-obs/src/registry.rs:
crates/pedal-obs/src/ring.rs:
crates/pedal-obs/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
