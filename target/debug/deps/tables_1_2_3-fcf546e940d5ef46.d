/root/repo/target/debug/deps/tables_1_2_3-fcf546e940d5ef46.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-fcf546e940d5ef46: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
