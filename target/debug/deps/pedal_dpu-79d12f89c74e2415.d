/root/repo/target/debug/deps/pedal_dpu-79d12f89c74e2415.d: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

/root/repo/target/debug/deps/pedal_dpu-79d12f89c74e2415: crates/pedal-dpu/src/lib.rs crates/pedal-dpu/src/bytes.rs crates/pedal-dpu/src/clock.rs crates/pedal-dpu/src/costs.rs crates/pedal-dpu/src/platform.rs crates/pedal-dpu/src/rng.rs

crates/pedal-dpu/src/lib.rs:
crates/pedal-dpu/src/bytes.rs:
crates/pedal-dpu/src/clock.rs:
crates/pedal-dpu/src/costs.rs:
crates/pedal-dpu/src/platform.rs:
crates/pedal-dpu/src/rng.rs:
