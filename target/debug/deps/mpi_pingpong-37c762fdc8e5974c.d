/root/repo/target/debug/deps/mpi_pingpong-37c762fdc8e5974c.d: examples/mpi_pingpong.rs

/root/repo/target/debug/deps/mpi_pingpong-37c762fdc8e5974c: examples/mpi_pingpong.rs

examples/mpi_pingpong.rs:
