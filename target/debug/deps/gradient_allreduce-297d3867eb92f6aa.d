/root/repo/target/debug/deps/gradient_allreduce-297d3867eb92f6aa.d: examples/gradient_allreduce.rs

/root/repo/target/debug/deps/gradient_allreduce-297d3867eb92f6aa: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
