/root/repo/target/debug/deps/pedal_codesign-c9ea32678b91c980.d: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs Cargo.toml

/root/repo/target/debug/deps/libpedal_codesign-c9ea32678b91c980.rmeta: crates/pedal-codesign/src/lib.rs crates/pedal-codesign/src/comm.rs crates/pedal-codesign/src/deployment.rs Cargo.toml

crates/pedal-codesign/src/lib.rs:
crates/pedal-codesign/src/comm.rs:
crates/pedal-codesign/src/deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
