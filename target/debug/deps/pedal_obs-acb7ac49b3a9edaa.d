/root/repo/target/debug/deps/pedal_obs-acb7ac49b3a9edaa.d: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

/root/repo/target/debug/deps/libpedal_obs-acb7ac49b3a9edaa.rlib: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

/root/repo/target/debug/deps/libpedal_obs-acb7ac49b3a9edaa.rmeta: crates/pedal-obs/src/lib.rs crates/pedal-obs/src/event.rs crates/pedal-obs/src/hist.rs crates/pedal-obs/src/json.rs crates/pedal-obs/src/registry.rs crates/pedal-obs/src/ring.rs crates/pedal-obs/src/trace.rs

crates/pedal-obs/src/lib.rs:
crates/pedal-obs/src/event.rs:
crates/pedal-obs/src/hist.rs:
crates/pedal-obs/src/json.rs:
crates/pedal-obs/src/registry.rs:
crates/pedal-obs/src/ring.rs:
crates/pedal-obs/src/trace.rs:
