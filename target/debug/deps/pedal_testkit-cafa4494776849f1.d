/root/repo/target/debug/deps/pedal_testkit-cafa4494776849f1.d: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

/root/repo/target/debug/deps/pedal_testkit-cafa4494776849f1: crates/pedal-testkit/src/lib.rs crates/pedal-testkit/src/corpus.rs crates/pedal-testkit/src/mutate.rs crates/pedal-testkit/src/oracle.rs crates/pedal-testkit/src/sweep.rs

crates/pedal-testkit/src/lib.rs:
crates/pedal-testkit/src/corpus.rs:
crates/pedal-testkit/src/mutate.rs:
crates/pedal-testkit/src/oracle.rs:
crates/pedal-testkit/src/sweep.rs:
