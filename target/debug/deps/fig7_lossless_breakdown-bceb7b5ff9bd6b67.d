/root/repo/target/debug/deps/fig7_lossless_breakdown-bceb7b5ff9bd6b67.d: crates/bench/src/bin/fig7_lossless_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_lossless_breakdown-bceb7b5ff9bd6b67.rmeta: crates/bench/src/bin/fig7_lossless_breakdown.rs Cargo.toml

crates/bench/src/bin/fig7_lossless_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
