/root/repo/target/debug/deps/ablation_par-d0889c897afbf131.d: crates/bench/src/bin/ablation_par.rs Cargo.toml

/root/repo/target/debug/deps/libablation_par-d0889c897afbf131.rmeta: crates/bench/src/bin/ablation_par.rs Cargo.toml

crates/bench/src/bin/ablation_par.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
