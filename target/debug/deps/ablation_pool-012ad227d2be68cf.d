/root/repo/target/debug/deps/ablation_pool-012ad227d2be68cf.d: crates/bench/src/bin/ablation_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pool-012ad227d2be68cf.rmeta: crates/bench/src/bin/ablation_pool.rs Cargo.toml

crates/bench/src/bin/ablation_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
