/root/repo/target/debug/deps/gradient_allreduce-8a811dc3c01b8bd6.d: examples/gradient_allreduce.rs

/root/repo/target/debug/deps/gradient_allreduce-8a811dc3c01b8bd6: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
