/root/repo/target/debug/deps/pedal_deflate-0a5f4aed7d47c18f.d: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

/root/repo/target/debug/deps/pedal_deflate-0a5f4aed7d47c18f: crates/pedal-deflate/src/lib.rs crates/pedal-deflate/src/bitio.rs crates/pedal-deflate/src/consts.rs crates/pedal-deflate/src/encoder.rs crates/pedal-deflate/src/huffman.rs crates/pedal-deflate/src/inflate.rs crates/pedal-deflate/src/lz77.rs

crates/pedal-deflate/src/lib.rs:
crates/pedal-deflate/src/bitio.rs:
crates/pedal-deflate/src/consts.rs:
crates/pedal-deflate/src/encoder.rs:
crates/pedal-deflate/src/huffman.rs:
crates/pedal-deflate/src/inflate.rs:
crates/pedal-deflate/src/lz77.rs:
