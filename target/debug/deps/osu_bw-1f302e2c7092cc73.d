/root/repo/target/debug/deps/osu_bw-1f302e2c7092cc73.d: crates/bench/src/bin/osu_bw.rs

/root/repo/target/debug/deps/osu_bw-1f302e2c7092cc73: crates/bench/src/bin/osu_bw.rs

crates/bench/src/bin/osu_bw.rs:
