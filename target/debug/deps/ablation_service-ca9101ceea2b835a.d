/root/repo/target/debug/deps/ablation_service-ca9101ceea2b835a.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-ca9101ceea2b835a: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
