/root/repo/target/debug/deps/proptest_zlib-103facd0ed44d5f3.d: crates/pedal-zlib/tests/proptest_zlib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_zlib-103facd0ed44d5f3.rmeta: crates/pedal-zlib/tests/proptest_zlib.rs Cargo.toml

crates/pedal-zlib/tests/proptest_zlib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
