/root/repo/target/debug/deps/gradient_allreduce-2ff620f63a27cb86.d: examples/gradient_allreduce.rs

/root/repo/target/debug/deps/gradient_allreduce-2ff620f63a27cb86: examples/gradient_allreduce.rs

examples/gradient_allreduce.rs:
