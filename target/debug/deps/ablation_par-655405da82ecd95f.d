/root/repo/target/debug/deps/ablation_par-655405da82ecd95f.d: crates/bench/src/bin/ablation_par.rs

/root/repo/target/debug/deps/ablation_par-655405da82ecd95f: crates/bench/src/bin/ablation_par.rs

crates/bench/src/bin/ablation_par.rs:
