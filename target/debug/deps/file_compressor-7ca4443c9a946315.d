/root/repo/target/debug/deps/file_compressor-7ca4443c9a946315.d: examples/file_compressor.rs

/root/repo/target/debug/deps/file_compressor-7ca4443c9a946315: examples/file_compressor.rs

examples/file_compressor.rs:
