/root/repo/target/debug/deps/tables_1_2_3-745f1a7aa3abcd3d.d: crates/bench/src/bin/tables_1_2_3.rs

/root/repo/target/debug/deps/tables_1_2_3-745f1a7aa3abcd3d: crates/bench/src/bin/tables_1_2_3.rs

crates/bench/src/bin/tables_1_2_3.rs:
