/root/repo/target/debug/deps/make_vectors-79b29612a0aeff2e.d: crates/pedal-testkit/src/bin/make_vectors.rs

/root/repo/target/debug/deps/make_vectors-79b29612a0aeff2e: crates/pedal-testkit/src/bin/make_vectors.rs

crates/pedal-testkit/src/bin/make_vectors.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/pedal-testkit
