/root/repo/target/debug/deps/tables_1_2_3-16c3a2bff2cac30c.d: crates/bench/src/bin/tables_1_2_3.rs Cargo.toml

/root/repo/target/debug/deps/libtables_1_2_3-16c3a2bff2cac30c.rmeta: crates/bench/src/bin/tables_1_2_3.rs Cargo.toml

crates/bench/src/bin/tables_1_2_3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
