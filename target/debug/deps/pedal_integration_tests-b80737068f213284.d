/root/repo/target/debug/deps/pedal_integration_tests-b80737068f213284.d: tests/src/lib.rs

/root/repo/target/debug/deps/pedal_integration_tests-b80737068f213284: tests/src/lib.rs

tests/src/lib.rs:
