/root/repo/target/debug/libpedal_lz4.rlib: /root/repo/crates/pedal-lz4/src/block.rs /root/repo/crates/pedal-lz4/src/frame.rs /root/repo/crates/pedal-lz4/src/lib.rs
