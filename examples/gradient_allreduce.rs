//! Distributed-training-style gradient aggregation — the workload class the
//! paper's introduction motivates (GRACE, Deep Gradient Compression,
//! 3LC): four workers allreduce a gradient tensor, with the reduction
//! tree's point-to-point hops carrying SZ3-compressed payloads.
//!
//! Demonstrates error-bounded lossy compression composing with a numeric
//! collective: each hop stays within the bound, and the final aggregate's
//! worst-case deviation is the sum of per-hop bounds (printed below).
//!
//! Run with: `cargo run -p pedal-examples --bin gradient_allreduce`

use pedal::{Datatype, Design};
use pedal_codesign::{PedalComm, PedalCommConfig};
use pedal_dpu::Platform;
use pedal_mpi::{run_world, RankCtx, WorldConfig};

const N_PARAMS: usize = 1_000_000;
const EB: f64 = 1e-4;

fn gradient_for(rank: usize) -> Vec<f32> {
    // Smooth, rank-dependent synthetic gradients (layers have structure;
    // that's why gradient compression works at all).
    (0..N_PARAMS)
        .map(|i| {
            let t = i as f32 * 1e-4;
            ((t + rank as f32).sin() * 0.01 + (t * 3.0).cos() * 0.002) / (1.0 + t)
        })
        .collect()
}

fn to_bytes(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn from_bytes(b: &[u8]) -> Vec<f32> {
    b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect()
}

/// Tree allreduce (sum) with compressed hops: reduce to rank 0, broadcast.
fn compressed_allreduce(comm: &mut PedalComm, mpi: &mut RankCtx, mut local: Vec<f32>) -> Vec<f32> {
    let size = mpi.size;
    let bytes_len = local.len() * 4;
    // Binomial reduce.
    let mut k = 1usize;
    while k < size {
        if mpi.rank & k != 0 {
            let parent = mpi.rank & !k;
            comm.send(mpi, parent, 10 + k as u64, Datatype::Float32, &to_bytes(&local)).unwrap();
            break;
        }
        if mpi.rank + k < size {
            let (msg, _) = comm.recv(mpi, mpi.rank + k, 10 + k as u64, bytes_len).unwrap();
            for (a, b) in local.iter_mut().zip(from_bytes(&msg)) {
                *a += b;
            }
        }
        k <<= 1;
    }
    // Broadcast the aggregate back.
    let root_data = if mpi.rank == 0 { Some(to_bytes(&local)) } else { None };
    let (agg, _) = comm.bcast(mpi, 0, Datatype::Float32, root_data.as_deref(), bytes_len).unwrap();
    from_bytes(&agg)
}

fn main() {
    println!("gradient allreduce: 4 workers x {N_PARAMS} params, SZ3 eb={EB} per hop\n");
    let reports = run_world(WorldConfig::new(4, Platform::BlueField2), |mpi: &mut RankCtx| {
        let (mut comm, _) =
            PedalComm::init(mpi, PedalCommConfig::new(Design::CE_SZ3).with_error_bound(EB))
                .unwrap();
        let local = gradient_for(mpi.rank);
        let t0 = mpi.now();
        let agg = compressed_allreduce(&mut comm, mpi, local);
        let elapsed = mpi.now().elapsed_since(t0);
        (agg, elapsed, comm.stats.wire_ratio())
    });

    // Exact reference for the error analysis.
    let mut exact = vec![0.0f64; N_PARAMS];
    for rank in 0..4 {
        for (e, g) in exact.iter_mut().zip(gradient_for(rank)) {
            *e += g as f64;
        }
    }
    // Worst case: log2(size) reduce hops + 1 bcast hop, each within EB,
    // and errors add through the sums.
    let hop_budget = EB * (4 + 1) as f64;
    for (rank, (agg, elapsed, ratio)) in reports.iter().enumerate() {
        let max_err =
            agg.iter().zip(&exact).map(|(&a, &e)| (a as f64 - e).abs()).fold(0.0f64, f64::max);
        assert!(max_err <= hop_budget, "rank {rank}: {max_err} > budget {hop_budget}");
        println!(
            "worker {rank}: allreduce {:>8.2} ms | max |err| {:.2e} (budget {:.1e}) | wire ratio {:.2}",
            elapsed.as_millis_f64(),
            max_err,
            hop_budget,
            ratio
        );
    }
    println!("\nAggregate stays within the accumulated per-hop error budget.");
}
