//! A domain-style pipeline: a weather-model rank produces a
//! brightness-temperature error field (the paper's obs_error workload),
//! lossy-compresses it with an absolute error bound, and broadcasts it to
//! analysis ranks over the compressed MPI collective.
//!
//! Run with: `cargo run -p pedal-examples --bin weather_pipeline`

use pedal::{Datatype, Design};
use pedal_codesign::{PedalComm, PedalCommConfig};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;
use pedal_mpi::{run_world, RankCtx, WorldConfig};

const ERROR_BOUND: f64 = 1e-3; // Kelvin — analysis tolerance

fn main() {
    // 4 MB of f32 observation errors on the producer rank.
    let field = DatasetId::ObsError.generate_bytes(4_000_000);

    println!("weather pipeline: 1 producer -> 3 analysis ranks, SZ3 eb={ERROR_BOUND}");
    let reports = run_world(WorldConfig::new(4, Platform::BlueField3), move |mpi: &mut RankCtx| {
        let (mut comm, init_cost) = PedalComm::init(
            mpi,
            PedalCommConfig::new(Design::SOC_SZ3).with_error_bound(ERROR_BOUND),
        )
        .unwrap();

        let root_data = if mpi.rank == 0 { Some(&field[..]) } else { None };
        let t0 = mpi.now();
        let (received, done) =
            comm.bcast(mpi, 0, Datatype::Float32, root_data, field.len()).unwrap();

        // Every analysis rank verifies the error bound locally.
        let mut max_err = 0.0f64;
        for (a, b) in field.chunks_exact(4).zip(received.chunks_exact(4)) {
            let x = f32::from_le_bytes(a.try_into().unwrap()) as f64;
            let y = f32::from_le_bytes(b.try_into().unwrap()) as f64;
            max_err = max_err.max((x - y).abs());
        }
        assert!(max_err <= ERROR_BOUND, "rank {}: bound violated", mpi.rank);

        format!(
            "rank {}: init {:>6.1} ms | bcast {:>7.3} ms | wire ratio {:>5.2} | max |err| {:.2e}",
            mpi.rank,
            init_cost.as_millis_f64(),
            done.elapsed_since(t0).as_millis_f64(),
            if mpi.rank == 0 { comm.stats.wire_ratio() } else { f64::NAN },
            max_err
        )
    });

    for r in reports {
        println!("{r}");
    }
    println!();
    println!("All analysis ranks received the field within the error bound.");
}
