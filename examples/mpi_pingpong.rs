//! OSU-style compressed ping-pong between two simulated BlueField DPUs —
//! the paper's Fig. 10 scenario in miniature.
//!
//! Run with: `cargo run -p pedal-examples --bin mpi_pingpong [--release]`

use pedal::{Datatype, Design, OverheadMode};
use pedal_codesign::{PedalComm, PedalCommConfig};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;
use pedal_mpi::{run_world, RankCtx, WorldConfig};

fn one_way_latency_ms(platform: Platform, design: Design, mode: OverheadMode, data: &[u8]) -> f64 {
    let payload = data.to_vec();
    let results = run_world(WorldConfig::new(2, platform), move |mpi: &mut RankCtx| {
        let mut cfg = PedalCommConfig::new(design);
        cfg.overhead_mode = mode;
        let (mut comm, _) = PedalComm::init(mpi, cfg).unwrap();
        if mpi.rank == 0 {
            let mut measured = 0u64;
            for it in 0..2u64 {
                let t0 = mpi.now();
                comm.send(mpi, 1, it, Datatype::Byte, &payload).unwrap();
                let (_, done) = comm.recv(mpi, 1, 100 + it, payload.len()).unwrap();
                if it == 1 {
                    measured = done.elapsed_since(t0).as_nanos() / 2;
                }
            }
            measured
        } else {
            for it in 0..2u64 {
                let (msg, _) = comm.recv(mpi, 0, it, payload.len()).unwrap();
                comm.send(mpi, 0, 100 + it, Datatype::Byte, &msg).unwrap();
            }
            0
        }
    });
    results[0] as f64 / 1e6
}

fn main() {
    let data = DatasetId::SilesiaXml.generate_bytes(4_000_000);
    println!("compressed ping-pong, 4 MB XML-like message, one-way latency (ms)\n");
    println!(
        "{:<18} {:>14} {:>14} {:>22}",
        "design", "BlueField-2", "BlueField-3", "baseline (BF2, no PEDAL)"
    );
    for design in Design::LOSSLESS {
        let bf2 = one_way_latency_ms(Platform::BlueField2, design, OverheadMode::Pedal, &data);
        let bf3 = one_way_latency_ms(Platform::BlueField3, design, OverheadMode::Pedal, &data);
        let base = one_way_latency_ms(Platform::BlueField2, design, OverheadMode::Baseline, &data);
        println!("{:<18} {:>14.3} {:>14.3} {:>22.3}", design.name(), bf2, bf3, base);
    }
    println!();
    println!(
        "The baseline pays memory allocation + DOCA initialization on every message;\n\
         PEDAL moved both into MPI_Init. That gap is the paper's headline 88x."
    );
}
