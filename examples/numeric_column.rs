//! The pco numeric/columnar codec tier on a float column: lossless
//! bit-exact compression that beats byte-oriented DEFLATE on numeric
//! data, standalone and as an SZ3 lossless backend.
//!
//! Run with: `cargo run -p pedal-examples --bin numeric_column`

use pedal_pco::{ColumnType, DeltaSpec, PcoConfig};
use pedal_sz3::{BackendKind, Dims, Field, Sz3Config};

fn main() {
    // A quantized sensor column: values reported in multiples of 2^-13,
    // like the paper's obs_error brightness-temperature errors. DEFLATE
    // sees high-entropy mantissa bytes; pco sees the structure.
    let column: Vec<f32> = (0..200_000)
        .map(|i| {
            let t = i as f64 * 0.002;
            let v = 1.7 * t.sin() + 0.4 * (13.0 * t).cos();
            ((v * 8192.0).round() / 8192.0) as f32
        })
        .collect();
    let raw: Vec<u8> = column.iter().flat_map(|v| v.to_le_bytes()).collect();

    // Standalone: typed entry points per column width. Auto delta order,
    // adaptive binning with per-bin stride extraction, rANS indices.
    let pco = pedal_pco::compress_f32(&column, &PcoConfig::default());
    let defl = pedal_deflate::compress(&raw, pedal_deflate::Level::DEFAULT);
    println!("column: {} f32 values ({} bytes)", column.len(), raw.len());
    println!("  pco     : {:8} bytes  ratio {:.3}", pco.len(), raw.len() as f64 / pco.len() as f64);
    println!(
        "  DEFLATE : {:8} bytes  ratio {:.3}",
        defl.len(),
        raw.len() as f64 / defl.len() as f64
    );

    // Decode is bit-exact for every input, non-finite values included.
    let mut salted = column.clone();
    salted[7] = f32::NAN;
    salted[8] = f32::from_bits(0x7FC0_1234); // NaN with payload bits
    salted[9] = f32::NEG_INFINITY;
    salted[10] = -0.0;
    let enc = pedal_pco::compress_f32(&salted, &PcoConfig::default());
    let back = pedal_pco::decompress_f32(&enc).expect("self-produced stream");
    assert!(salted.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("  round-trip with NaN payloads / -inf / -0.0: bit-exact");

    // Byte-oriented entry point for untyped payloads (tag a column type
    // to get the typed pipeline on a raw byte buffer).
    let typed = pedal_pco::compress_typed_bytes(&raw, ColumnType::F32, &PcoConfig::default());
    assert_eq!(pedal_pco::decompress_bytes_with_limit(&typed, raw.len()).unwrap(), raw);

    // A fixed delta order skips the sampling pass; order 0 suits
    // already-stationary columns.
    let cfg = PcoConfig { delta: DeltaSpec::Order(1), ..Default::default() };
    let fixed = pedal_pco::compress_f32(&column, &cfg);
    println!("  pco (delta order 1): {} bytes", fixed.len());

    // As an SZ3 lossless backend: the error-bounded core stream is
    // sealed with pco instead of the default Zstd-style backend.
    let field = Field::new(Dims::d1(column.len()), column.clone());
    let sz3_cfg = Sz3Config { backend: BackendKind::Pco, ..Sz3Config::with_error_bound(1e-4) };
    let sealed = pedal_sz3::compress(&field, &sz3_cfg);
    let restored: Field<f32> = pedal_sz3::decompress(&sealed).expect("self-produced stream");
    let max_err = column
        .iter()
        .zip(restored.data.iter())
        .map(|(a, b)| (a - b).abs() as f64)
        .fold(0.0f64, f64::max);
    println!("  SZ3+pco backend: {} bytes sealed, max error {max_err:.2e}", sealed.len());
}
