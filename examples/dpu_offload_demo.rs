//! Direct use of the simulated DOCA layer: open both BlueField generations,
//! query engine capabilities, and submit compression jobs — showing the
//! capability differences (Table II) and PEDAL's SoC fallback behaviour.
//!
//! Run with: `cargo run -p pedal-examples --bin dpu_offload_demo`

use pedal_doca::{CompressJob, DocaContext, DocaError, JobKind};
use pedal_dpu::{Platform, SimInstant};

fn main() {
    let data = pedal_datasets::DatasetId::SilesiaSamba.generate_bytes(1_000_000);

    for platform in Platform::ALL {
        let spec = platform.spec();
        println!(
            "=== {} ({} x {} @ {} GHz, {}, {} Gb/s {}) ===",
            platform.name(),
            spec.soc_cores,
            spec.core_model,
            spec.core_ghz,
            spec.dram,
            spec.network_gbps,
            spec.nic,
        );
        let ctx = DocaContext::open(platform).expect("device open");
        println!("DOCA init cost (prepaid by PEDAL_init): {:.1} ms", ctx.init_cost.as_millis_f64());

        for kind in [
            JobKind::DeflateCompress,
            JobKind::DeflateDecompress,
            JobKind::Lz4Compress,
            JobKind::Lz4Decompress,
        ] {
            print!("  {kind:?}: ");
            if !ctx.supports(kind) {
                println!("unsupported by this C-Engine (PEDAL falls back to the SoC)");
                continue;
            }
            // Decompress jobs need an input produced on the SoC first.
            let (input, expected) = match kind {
                JobKind::DeflateCompress | JobKind::Lz4Compress => (data.clone(), None),
                JobKind::DeflateDecompress => (
                    pedal_deflate::compress(&data, pedal_deflate::Level::DEFAULT),
                    Some(data.len()),
                ),
                JobKind::Lz4Decompress => (pedal_lz4::compress_block(&data, 1), Some(data.len())),
            };
            let mut job = CompressJob::new(kind, input);
            if let Some(n) = expected {
                job = job.with_expected_len(n);
            }
            match ctx.submit(job, SimInstant::EPOCH) {
                Ok((result, done)) => println!(
                    "{} -> {} bytes in {:.3} ms (engine time), done at t={:.3} ms",
                    data.len(),
                    result.output.len(),
                    result.service_time.as_millis_f64(),
                    done.0 as f64 / 1e6,
                ),
                Err(DocaError::Capability(e)) => println!("capability error: {e}"),
                Err(e) => println!("error: {e}"),
            }
        }
        println!();
    }

    println!(
        "BlueField-3 dropped engine-side compression — the asymmetry PEDAL's\n\
         capability detection and SoC fallback are built around."
    );
}
