//! Halo-exchange stencil mini-app: a 1-D domain-decomposed Jacobi heat
//! solver whose ghost-cell exchanges travel through the PEDAL-compressed
//! MPI path — the communication pattern behind most of the HPC
//! applications the paper's introduction cites.
//!
//! Each rank owns a slab of a 1-D rod; every iteration exchanges one halo
//! row with each neighbour (small, Eager class — sent raw by the RNDV
//! policy) and every `CHECKPOINT` iterations gathers the whole field to
//! rank 0 (large, rendezvous class — SZ3-compressed). The final field is
//! compared against a sequential solve.
//!
//! Run with: `cargo run -p pedal-examples --bin halo_exchange`

use pedal::{Datatype, Design};
use pedal_codesign::{PedalComm, PedalCommConfig};
use pedal_dpu::Platform;
use pedal_mpi::{run_world, RankCtx, WorldConfig};

const RANKS: usize = 4;
const CELLS_PER_RANK: usize = 100_000;
const ITERS: usize = 200;
const CHECKPOINT: usize = 50;
const EB: f64 = 1e-6;

fn to_bytes(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn initial(i: usize, n: usize) -> f32 {
    // A hot spot in the middle of the rod plus fixed warm ends.
    if i == 0 || i == n - 1 {
        1.0
    } else if (n / 2 - n / 20..n / 2 + n / 20).contains(&i) {
        10.0
    } else {
        0.0
    }
}

/// Sequential reference solve.
fn sequential() -> Vec<f32> {
    let n = RANKS * CELLS_PER_RANK;
    let mut cur: Vec<f32> = (0..n).map(|i| initial(i, n)).collect();
    let mut next = cur.clone();
    for _ in 0..ITERS {
        for i in 1..n - 1 {
            next[i] = 0.5 * cur[i] + 0.25 * (cur[i - 1] + cur[i + 1]);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

fn main() {
    println!(
        "halo exchange: {RANKS} ranks x {CELLS_PER_RANK} cells, {ITERS} Jacobi iters, \
         checkpoint every {CHECKPOINT}\n"
    );
    let n_total = RANKS * CELLS_PER_RANK;

    let results = run_world(WorldConfig::new(RANKS, Platform::BlueField2), |mpi: &mut RankCtx| {
        let (mut comm, _) =
            PedalComm::init(mpi, PedalCommConfig::new(Design::CE_SZ3).with_error_bound(EB))
                .unwrap();
        let base = mpi.rank * CELLS_PER_RANK;
        // Local slab with one ghost cell on each side.
        let mut cur = vec![0.0f32; CELLS_PER_RANK + 2];
        for i in 0..CELLS_PER_RANK {
            cur[i + 1] = initial(base + i, n_total);
        }
        let mut next = cur.clone();
        let mut checkpoints = 0usize;

        for it in 0..ITERS {
            // Halo exchange with neighbours (Eager-class: 4 bytes each).
            let tag = 1000 + it as u64;
            if mpi.rank > 0 {
                comm.send(mpi, mpi.rank - 1, tag, Datatype::Float32, &cur[1].to_le_bytes())
                    .unwrap();
                let (left, _) = comm.recv(mpi, mpi.rank - 1, tag + 5000, 4).unwrap();
                cur[0] = f32::from_le_bytes(left.try_into().unwrap());
            } else {
                cur[0] = 1.0; // boundary
            }
            if mpi.rank + 1 < mpi.size {
                comm.send(
                    mpi,
                    mpi.rank + 1,
                    tag + 5000,
                    Datatype::Float32,
                    &cur[CELLS_PER_RANK].to_le_bytes(),
                )
                .unwrap();
                let (right, _) = comm.recv(mpi, mpi.rank + 1, tag, 4).unwrap();
                cur[CELLS_PER_RANK + 1] = f32::from_le_bytes(right.try_into().unwrap());
            } else {
                cur[CELLS_PER_RANK + 1] = 1.0;
            }

            // Stencil update.
            for i in 1..=CELLS_PER_RANK {
                let gi = base + i - 1;
                next[i] = if gi == 0 || gi == n_total - 1 {
                    cur[i] // fixed boundary
                } else {
                    0.5 * cur[i] + 0.25 * (cur[i - 1] + cur[i + 1])
                };
            }
            std::mem::swap(&mut cur, &mut next);

            // Periodic compressed checkpoint to rank 0 (RNDV class).
            if (it + 1) % CHECKPOINT == 0 {
                let slab = to_bytes(&cur[1..=CELLS_PER_RANK]);
                let gathered = comm.gather(mpi, 0, Datatype::Float32, &slab).unwrap();
                if mpi.rank == 0 {
                    assert_eq!(gathered.len(), RANKS);
                    checkpoints += 1;
                }
            }
        }
        (cur[1..=CELLS_PER_RANK].to_vec(), checkpoints, comm.stats.wire_ratio())
    });

    // Stitch and compare against the sequential reference.
    let reference = sequential();
    let mut max_err = 0.0f64;
    for (rank, (slab, _, _)) in results.iter().enumerate() {
        for (i, &v) in slab.iter().enumerate() {
            let e = (v as f64 - reference[rank * CELLS_PER_RANK + i] as f64).abs();
            max_err = max_err.max(e);
        }
    }
    // Halos travel uncompressed (Eager), so the stencil itself is exact;
    // only checkpoints were lossy, and they don't feed back into the state.
    assert!(max_err < 1e-6, "solution diverged: {max_err}");
    // Rank 0 only receives checkpoints; a worker rank's ratio reflects the
    // compressed slab uploads (its tiny halo messages drag it slightly).
    println!(
        "solution matches sequential reference (max |err| {max_err:.2e}); \
         {} compressed checkpoints, worker wire ratio {:.2}",
        results[0].1, results[1].2
    );
}
