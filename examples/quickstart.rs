//! Quickstart: compress and decompress a message with PEDAL on a simulated
//! BlueField-2, across all eight compression designs.
//!
//! Run with: `cargo run -p pedal-examples --bin quickstart`

use pedal::{Datatype, Design, PedalConfig, PedalContext};
use pedal_datasets::DatasetId;
use pedal_dpu::Platform;

fn main() {
    // Some realistic data: 2 MB of XML-like text and 2 MB of MD floats.
    let text = DatasetId::SilesiaXml.generate_bytes(2_000_000);
    let floats = DatasetId::Exaalt1.generate_bytes(2_000_000);

    println!("PEDAL quickstart on simulated {}\n", Platform::BlueField2.name());
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "design", "in(KB)", "wire(KB)", "ratio", "comp(ms)", "decomp(ms)"
    );

    for design in Design::ALL {
        // PEDAL_init: DOCA setup + memory pool, paid once.
        let ctx = PedalContext::init(PedalConfig::new(Platform::BlueField2, design)).expect("init");

        let (data, datatype) =
            if design.is_lossy() { (&floats, Datatype::Float32) } else { (&text, Datatype::Byte) };

        // Warm the pool (first message registers buffers), then measure.
        let _ = ctx.compress(datatype, data).unwrap();
        let packed = ctx.compress(datatype, data).unwrap();
        let out = ctx.decompress(&packed.payload, data.len()).unwrap();
        assert_eq!(out.data.len(), data.len());

        println!(
            "{:<18} {:>10} {:>10} {:>8.2} {:>12.3} {:>12.3}{}",
            design.name(),
            data.len() / 1024,
            packed.wire_len() / 1024,
            packed.ratio(),
            packed.timing.total().as_millis_f64(),
            out.timing.total().as_millis_f64(),
            if packed.fell_back { "  (fell back to SoC)" } else { "" }
        );
    }

    println!();
    println!("Times are virtual (calibrated BlueField-2 cost model); the bytes are real.");
}
