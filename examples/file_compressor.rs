//! A small file compression utility built on the workspace codecs — the
//! "standalone PEDAL library" usage mode from the paper's §VI ("directly
//! program with PEDAL for designing their data compression and
//! decompression pipelines").
//!
//! Usage:
//!   cargo run -p pedal-examples --bin file_compressor -- compress   `<algo> <in> <out>`
//!   cargo run -p pedal-examples --bin file_compressor -- decompress `<algo> <in> <out>`
//! with `<algo>` one of: deflate | zlib | lz4 | sz3 (sz3 expects f32 input)
//!
//! With no arguments, runs a self-demo on generated data.

use pedal_sz3::{Dims, Field, Sz3Config};

fn compress(algo: &str, data: &[u8]) -> Vec<u8> {
    match algo {
        "deflate" => pedal_deflate::compress(data, pedal_deflate::Level::DEFAULT),
        "zlib" => pedal_zlib::compress(data, pedal_zlib::Level::DEFAULT),
        "lz4" => pedal_lz4::compress(data),
        "sz3" => {
            let n = data.len() / 4;
            assert!(n > 0 && data.len().is_multiple_of(4), "sz3 input must be f32s");
            let field = Field::<f32>::from_bytes(Dims::d1(n), data);
            pedal_sz3::compress(&field, &Sz3Config::with_error_bound(1e-4))
        }
        other => {
            eprintln!("unknown algorithm {other}; use deflate|zlib|lz4|sz3");
            std::process::exit(2);
        }
    }
}

fn decompress(algo: &str, data: &[u8]) -> Vec<u8> {
    match algo {
        "deflate" => pedal_deflate::decompress(data).expect("corrupt deflate stream"),
        "zlib" => pedal_zlib::decompress(data).expect("corrupt zlib stream"),
        "lz4" => pedal_lz4::decompress(data).expect("corrupt lz4 frame"),
        "sz3" => pedal_sz3::decompress::<f32>(data).expect("corrupt sz3 stream").to_bytes(),
        other => {
            eprintln!("unknown algorithm {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [mode, algo, input, output] if mode == "compress" || mode == "decompress" => {
            let data = std::fs::read(input).expect("read input");
            let out =
                if mode == "compress" { compress(algo, &data) } else { decompress(algo, &data) };
            std::fs::write(output, &out).expect("write output");
            println!("{mode}ed {} -> {} bytes ({} -> {})", data.len(), out.len(), input, output);
        }
        [] => self_demo(),
        _ => {
            eprintln!("usage: file_compressor [compress|decompress] <algo> <in> <out>");
            std::process::exit(2);
        }
    }
}

fn self_demo() {
    println!("file_compressor self-demo (no arguments given)\n");
    let text = pedal_datasets::DatasetId::SilesiaSamba.generate_bytes(1_000_000);
    for algo in ["deflate", "zlib", "lz4"] {
        let packed = compress(algo, &text);
        let back = decompress(algo, &packed);
        assert_eq!(back, text);
        println!(
            "{algo:<8} {:>8} -> {:>8} bytes (ratio {:.2}), round-trip OK",
            text.len(),
            packed.len(),
            text.len() as f64 / packed.len() as f64
        );
    }
    let floats = pedal_datasets::DatasetId::Exaalt3.generate_bytes(1_000_000);
    let packed = compress("sz3", &floats);
    let back = decompress("sz3", &packed);
    let mut max_err = 0.0f32;
    for (a, b) in floats.chunks_exact(4).zip(back.chunks_exact(4)) {
        let x = f32::from_le_bytes(a.try_into().unwrap());
        let y = f32::from_le_bytes(b.try_into().unwrap());
        max_err = max_err.max((x - y).abs());
    }
    println!(
        "{:<8} {:>8} -> {:>8} bytes (ratio {:.2}), max error {:.1e} <= 1e-4",
        "sz3",
        floats.len(),
        packed.len(),
        floats.len() as f64 / packed.len() as f64,
        max_err
    );
}
